"""Automatic parallelisation of ``kernels`` regions.

Paper Section II-C: "the ``parallel`` construct provides more control to
the user while the ``kernels`` one offers more control to the compiler."
OpenUH's kernels lowering (paper reference [16]) analyses the loop nest,
proves independence with the dependence tests, and chooses the gang/vector
mapping itself.  This pass implements that behaviour for loops the user
left undirected inside a ``kernels`` region:

* the outermost provably-parallel loop becomes a ``gang`` loop;
* a directly nested provably-parallel loop becomes the ``vector`` loop
  (the coalescing axis), with the default vector length;
* everything else stays sequential — including loops whose independence
  cannot be proven (unknown distances are conservative, so a loop with an
  indirect store stays sequential rather than racing).

Loops that already carry a ``loop`` directive are never touched: explicit
user mapping wins, exactly as in OpenACC.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.dependence import is_parallelizable
from ..analysis.loopinfo import analyze_loops
from ..ir.stmt import Loop, Region
from ..lang.directives import LoopDirective


@dataclass(slots=True)
class AutoparReport:
    gang_loops: list[Loop] = field(default_factory=list)
    vector_loops: list[Loop] = field(default_factory=list)
    kept_sequential: list[Loop] = field(default_factory=list)

    @property
    def parallelized(self) -> int:
        return len(self.gang_loops) + len(self.vector_loops)


def auto_parallelize(
    region: Region, default_vector_length: int = 128
) -> AutoparReport:
    """Map undirected loops of a ``kernels`` region onto the GPU topology."""
    report = AutoparReport()
    if region.directive.construct != "kernels":
        return report  # 'parallel': mapping is the user's job.
    info = analyze_loops(region)

    # Consider only loops whose every ancestor is undirected too — once a
    # *user* directive appears anywhere above, we stay out of that subtree
    # (directives this pass itself assigns do not count).
    auto_assigned: set[int] = set()

    def user_directed(loop: Loop) -> bool:
        return loop.directive is not None and loop.loop_id not in auto_assigned

    for loop in info.loops:
        if user_directed(loop) or any(user_directed(a) for a in info.enclosing(loop)):
            continue
        parents = info.enclosing(loop)
        mapped_parents = [p for p in parents if p.is_parallel]
        if not is_parallelizable(loop):
            report.kept_sequential.append(loop)
            continue
        if not mapped_parents:
            # Outermost parallel level: gang; if it is also the innermost
            # loop of the nest, give it the vector dimension too.
            if info.inner_loops(loop):
                loop.directive = LoopDirective(gang=True)
            else:
                loop.directive = LoopDirective(
                    gang=True, vector=default_vector_length
                )
                report.vector_loops.append(loop)
            auto_assigned.add(loop.loop_id)
            report.gang_loops.append(loop)
        elif not any(
            p.directive is not None and p.directive.vector is not None
            for p in mapped_parents
        ):
            # One parallel ancestor without a vector axis yet: this loop
            # becomes the vector (coalescing) dimension.
            loop.directive = LoopDirective(vector=default_vector_length)
            auto_assigned.add(loop.loop_id)
            report.vector_loops.append(loop)
        else:
            # Gang and vector axes already assigned: deeper parallel loops
            # run sequentially per thread (the common OpenUH choice).
            report.kept_sequential.append(loop)
    return report
