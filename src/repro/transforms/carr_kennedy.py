"""The classic Carr-Kennedy scalar-replacement baseline (paper Section III-A).

This is the algorithm the paper improves upon.  Its two GPU-hostile traits
are reproduced faithfully because the evaluation depends on them:

1. **It ignores loop parallelism.**  Inter-iteration replacement is applied
   wherever reuse exists — including OpenACC-parallel loops, which the
   rotating-register pattern then *sequentialises* (Figures 3–4).  The
   resulting loop is marked ``sequentialized`` so the launch model executes
   its iterations on a single thread, exposing the performance cliff.

2. **Its register-pressure moderation is use-count based.**  Candidates are
   ranked purely by ``reference_count`` — no memory-latency awareness — and
   replaced until a fixed register budget is spent (the original paper's
   moderation model parameterised the number of available CPU registers).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.loopinfo import analyze_loops
from ..analysis.reuse import GroupKind, find_reuse_groups
from ..ir.module import KernelFunction
from ..ir.stmt import If, Loop, Region, Stmt
from ..ir.symbols import SymbolTable
from .scalar_replacement import ReplacementResult, can_replace, replace_group


@dataclass(slots=True)
class CarrKennedyReport:
    """What the baseline did to one region."""

    replacements: list[ReplacementResult] = field(default_factory=list)
    registers_spent: int = 0
    sequentialized_loops: list[Loop] = field(default_factory=list)

    @property
    def groups_replaced(self) -> int:
        return len(self.replacements)


def apply_carr_kennedy(
    region: Region,
    symtab: SymbolTable,
    register_budget: int = 32,
    intra_only: bool = False,
) -> CarrKennedyReport:
    """Run the baseline over every loop of an offload region.

    ``register_budget`` is the number of 32-bit registers the moderation
    model may spend on scalar-replacement temporaries.  ``intra_only``
    restricts replacement to intra-iteration groups (used to model
    conservative production compilers that never rotate registers across
    iterations).
    """
    report = CarrKennedyReport()
    info = analyze_loops(region)
    # Innermost-first (deepest loops carry the most reuse), mirroring the
    # original algorithm's processing of innermost loop bodies.
    loops = sorted(info.loops, key=lambda l: -info.depths[l.loop_id])
    for loop in loops:
        _apply_to_loop(region, loop, symtab, report, register_budget, intra_only)
    return report


def _parent_stmts(region: Region, loop: Loop) -> list[Stmt]:
    """The statement list directly containing ``loop``."""

    def search(stmts: list[Stmt]) -> list[Stmt] | None:
        if loop in stmts:
            return stmts
        for s in stmts:
            if isinstance(s, Loop):
                found = search(s.body)
                if found is not None:
                    return found
            elif isinstance(s, If):
                found = search(s.then_body) or search(s.else_body)
                if found is not None:
                    return found
        return None

    found = search(region.body)
    if found is None:
        raise ValueError("loop not found in region")
    return found


def _apply_to_loop(
    region: Region,
    loop: Loop,
    symtab: SymbolTable,
    report: CarrKennedyReport,
    register_budget: int,
    intra_only: bool = False,
) -> None:
    groups = find_reuse_groups(loop)
    if intra_only:
        groups = [g for g in groups if g.kind is GroupKind.INTRA]
    # Use-count priority: the original moderation metric (Section III-A.2:
    # "the metric used is how many memory accesses can be removed").
    groups.sort(key=lambda g: (-g.ref_count, g.generator.order))
    parent = _parent_stmts(region, loop)
    for group in groups:
        if not can_replace(group, allow_inter=True):
            continue
        elem_regs = group.array.array.elem.registers if group.array.array else 1
        need = group.temporaries_needed() * elem_regs
        if report.registers_spent + need > register_budget:
            continue
        was_parallel = loop.is_parallel
        result = replace_group(parent, loop, group, symtab)
        report.replacements.append(result)
        report.registers_spent += need
        if result.group.kind is GroupKind.INTER and was_parallel:
            loop.sequentialized = True
            if loop not in report.sequentialized_loops:
                report.sequentialized_loops.append(loop)
