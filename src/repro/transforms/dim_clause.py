"""Semantics of the proposed ``dim`` clause (paper Section IV-A).

``dim`` declares that a set of allocatable/VLA arrays share identical
dimensions, letting the backend emit **one** offset computation (one set of
dope-vector temporaries) for the whole group instead of one per array —
reducing both instruction count and register pressure.

This module computes *dope classes*: a partition of the region's arrays
such that all members of a class provably share dimension data.  The code
generator then materialises dope temporaries once per class
(:mod:`repro.codegen.kernelgen`).

Arrays are also auto-unioned when their declared dimensions are
*statically identical* symbols/constants — the paper notes the compiler
can exploit this when it can prove equality; the clause exists for the
cases it cannot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang.directives import DimGroup, DimSpec
from ..lang.errors import SemanticError
from ..ir.stmt import Region
from ..ir.symbols import Dim, Symbol, SymbolTable


@dataclass(slots=True)
class DopeClasses:
    """Partition of array symbols into shared-dope classes.

    ``class_of[sym]`` is a small integer id; arrays mapped to the same id
    share one offset computation.  Arrays without an entry each get their
    own dope (the default).
    """

    class_of: dict[Symbol, int] = field(default_factory=dict)
    members: dict[int, list[Symbol]] = field(default_factory=dict)

    def share(self, a: Symbol, b: Symbol) -> bool:
        ca = self.class_of.get(a)
        return ca is not None and ca == self.class_of.get(b)

    def representative(self, sym: Symbol) -> Symbol:
        """The class leader whose dope temporaries everyone reuses."""
        cid = self.class_of.get(sym)
        if cid is None:
            return sym
        return self.members[cid][0]


def _dims_statically_equal(a: tuple[Dim, ...], b: tuple[Dim, ...]) -> bool:
    """Provably identical shapes *without* runtime information.

    Only fully static (integer-literal) shapes qualify.  Arrays whose
    bounds are runtime scalars are **never** auto-unioned, even when their
    declarations name the same bound variables: at run time each VLA /
    allocatable array carries its own dope vector, and the compiler "has no
    idea whether these arrays have the same dimension" (paper Section
    IV-A) — that is precisely the information gap the ``dim`` clause fills.
    """
    if len(a) != len(b):
        return False
    for da, db in zip(a, b):
        if not (da.is_static and db.is_static):
            return False
        if da.extent != db.extent or da.lower != db.lower:
            return False
    return True


def _check_group_against_decls(
    group: DimGroup, symtab: SymbolTable
) -> list[Symbol]:
    """Resolve group member names; verify ranks and any static dimension
    info the user supplied (Section IV: the compiler can verify clause
    correctness where it is statically possible)."""
    syms: list[Symbol] = []
    for name in group.arrays:
        sym = symtab.lookup(name)
        if sym is None or sym.array is None:
            raise SemanticError(f"dim clause names unknown array {name!r}")
        if sym.array.is_pointer:
            raise SemanticError(
                f"dim clause cannot apply to pointer {name!r} (no dope vector)"
            )
        if group.dims and len(sym.array.dims) != len(group.dims):
            raise SemanticError(
                f"dim clause rank {len(group.dims)} does not match array "
                f"{name!r} of rank {len(sym.array.dims)}"
            )
        _check_static_dims(group.dims, sym)
        syms.append(sym)
    return syms


def _check_static_dims(specs: tuple[DimSpec, ...], sym: Symbol) -> None:
    for spec, dim in zip(specs, sym.array.dims):
        if isinstance(spec.extent, int) and isinstance(dim.extent, int):
            if spec.extent != dim.extent:
                raise SemanticError(
                    f"dim clause declares extent {spec.extent} but array "
                    f"{sym.name!r} has static extent {dim.extent}"
                )


def compute_dope_classes(
    region: Region, symtab: SymbolTable, auto_union_static: bool = True
) -> DopeClasses:
    """Build the dope-sharing partition for one offload region.

    * every ``dim`` clause group forms a class;
    * with ``auto_union_static`` (default), arrays whose declared dims are
      *statically identical* (same bound symbols / same constants) are also
      unioned — the compiler does not need the user's help for those.
    """
    classes = DopeClasses()
    next_id = 0

    def assign(syms: list[Symbol]) -> None:
        nonlocal next_id
        existing = [classes.class_of[s] for s in syms if s in classes.class_of]
        cid = existing[0] if existing else next_id
        if not existing:
            next_id += 1
        classes.members.setdefault(cid, [])
        for s in syms:
            if s not in classes.class_of:
                classes.class_of[s] = cid
                classes.members[cid].append(s)

    for group in region.directive.dim_groups:
        syms = _check_group_against_decls(group, symtab)
        if len(syms) >= 1:
            assign(syms)

    if auto_union_static:
        arrays = [
            s
            for s in symtab.arrays()
            if s.array is not None and not s.array.is_pointer and s.array.dims
        ]
        for i, a in enumerate(arrays):
            for b in arrays[i + 1 :]:
                if a in classes.class_of and b in classes.class_of:
                    continue
                if _dims_statically_equal(a.array.dims, b.array.dims):
                    if a in classes.class_of:
                        assign([a, b])
                    elif b in classes.class_of:
                        assign([b, a])
                    else:
                        assign([a, b])
    return classes
