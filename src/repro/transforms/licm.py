"""Loop-invariant load motion (LICM) — part of the *baseline* pipeline.

The paper's base compiler is OpenUH at ``-O3``, whose global optimizer
(WOPT, Figure 2) already hoists loop-invariant loads.  Running this pass
in every configuration keeps the evaluation honest: SAFARA is credited
only for the reuse the baseline cannot already exploit (intra-iteration
duplicates and inter-iteration chains), not for ordinary invariant
hoisting.

Only *read-only* invariant references are hoisted out of *sequential*
loops (hoisting from a parallel loop is meaningless — each thread runs
one iteration; hoisting written references past a possibly-zero-trip loop
would be unsound).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.loopinfo import analyze_loops
from ..analysis.reuse import GroupKind, find_reuse_groups
from ..ir.stmt import Loop, Region
from ..ir.symbols import SymbolTable
from .carr_kennedy import _parent_stmts
from .scalar_replacement import ReplacementResult, replace_group


@dataclass(slots=True)
class LicmReport:
    hoisted: list[ReplacementResult] = field(default_factory=list)

    @property
    def loads_hoisted(self) -> int:
        return len(self.hoisted)


def apply_licm(region: Region, symtab: SymbolTable) -> LicmReport:
    """Hoist read-only loop-invariant loads out of sequential loops,
    innermost-first so multi-level invariants bubble all the way up."""
    report = LicmReport()
    changed = True
    while changed:
        changed = False
        info = analyze_loops(region)
        loops = sorted(info.loops, key=lambda l: -info.depths[l.loop_id])
        for loop in loops:
            if loop.is_parallel:
                continue
            for group in find_reuse_groups(loop):
                if group.kind is not GroupKind.INVARIANT or group.has_write:
                    continue
                parent = _parent_stmts(region, loop)
                result = replace_group(parent, loop, group, symtab)
                report.hoisted.append(result)
                changed = True
            if changed:
                break
    return report
