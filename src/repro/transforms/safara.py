"""SAFARA — StAtic Feedback-bAsed Register allocation Assistant for GPUs.

The paper's core algorithm (Section III-B), with all three components:

1. **Parallel-loop guard** — inter-iteration scalar replacement is applied
   only to sequential loops; parallel loops get intra-iteration replacement
   only, so the transformation can never sequentialise them (fixes the
   first Carr-Kennedy limitation, Figures 3–4).

2. **GPU-aware cost model** — candidates are classified by memory space
   (global vs read-only cache) and coalescing, then priced as
   ``reference_count × memory_access_latency`` and sorted from higher to
   lower cost (fixes the second limitation, Section III-A.2).

3. **Iterative assembler feedback** — the region is compiled with the
   backend, the (simulated) ``PTXAS info`` register count is fed back, the
   available-register budget is computed against the hardware limit, and
   the top-cost candidates that fit are replaced.  The loop repeats until
   registers are saturated or no candidates remain (Section III-B.2/4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from ..analysis.coalescing import classify_access
from ..analysis.cost_model import Candidate, LatencyModel, price_candidates
from ..analysis.loopinfo import analyze_loops
from ..analysis.memspace import classify_memspaces
from ..analysis.reuse import GroupKind, find_reuse_groups
from ..ir.stmt import Loop, Region
from ..ir.symbols import SymbolTable
from ..obs.tracer import span
from .carr_kennedy import _parent_stmts
from .scalar_replacement import ReplacementResult, can_replace, replace_group


class RegisterFeedback(Protocol):
    """The GPU-assembler feedback interface (PTXAS info in the paper).

    Implemented by :mod:`repro.feedback.driver` over the simulated
    register allocator; any callable returning an object with a
    ``registers`` attribute works.
    """

    def __call__(self, region: Region) -> "HasRegisters": ...


class HasRegisters(Protocol):
    registers: int


@dataclass(slots=True)
class SafaraIteration:
    """One feedback round."""

    registers_before: int
    available: int
    applied: list[ReplacementResult] = field(default_factory=list)

    @property
    def registers_requested(self) -> int:
        return sum(
            r.group.temporaries_needed()
            * (r.group.array.array.elem.registers if r.group.array.array else 1)
            for r in self.applied
        )


@dataclass(slots=True)
class SafaraReport:
    """Full trace of a SAFARA run on one region."""

    iterations: list[SafaraIteration] = field(default_factory=list)
    final_registers: int = 0
    register_limit: int = 0

    @property
    def groups_replaced(self) -> int:
        return sum(len(it.applied) for it in self.iterations)

    @property
    def loads_saved_per_iteration(self) -> int:
        return sum(
            r.loads_saved_per_iteration
            for it in self.iterations
            for r in it.applied
        )

    @property
    def converged_reason(self) -> str:
        if not self.iterations:
            return "no-candidates"
        if self.final_registers >= self.register_limit:
            return "registers-saturated"
        return "candidates-exhausted"


def collect_candidates(
    region: Region,
    has_readonly_cache: bool = True,
    latency: LatencyModel | None = None,
) -> list[Candidate]:
    """All currently replaceable reuse groups of a region, priced and
    ranked by descending cost.

    The parallel-loop guard is applied here: on parallel loops only INTRA
    groups survive; sequential loops additionally contribute INVARIANT and
    read-only INTER groups.
    """
    info = analyze_loops(region)
    vector_var = info.vector_var
    divergent = frozenset(info.divergent_symbols())
    spaces = classify_memspaces(region, has_readonly_cache=has_readonly_cache)
    groups = []
    for loop in info.loops:
        allow_inter = not loop.is_parallel
        for group in find_reuse_groups(loop):
            if loop.is_parallel and group.kind is not GroupKind.INTRA:
                continue
            if not can_replace(group, allow_inter=allow_inter):
                continue
            groups.append(group)
    accesses = {
        g.generator.ref: classify_access(g.generator.ref, vector_var, divergent)
        for g in groups
    }
    return price_candidates(groups, spaces, accesses, latency)


def apply_safara(
    region: Region,
    symtab: SymbolTable,
    feedback: Callable[[Region], HasRegisters],
    register_limit: int = 255,
    has_readonly_cache: bool = True,
    latency: LatencyModel | None = None,
    max_iterations: int = 16,
    max_candidates: int | None = None,
) -> SafaraReport:
    """Run the full SAFARA loop on one offload region (paper Sec. III-B.4):

    1. compile without further replacement; read back register usage;
    2. compute ``available = register_limit - used``;
    3. replace the most beneficial candidates that fit;
    4. repeat until saturation or exhaustion.

    ``max_candidates`` caps how many (top-cost) candidates each iteration
    may consider — the autotuner's candidate-budget knob.  ``None`` keeps
    the paper's behavior (consider every candidate that fits).
    """
    report = SafaraReport(register_limit=register_limit)
    for i in range(max_iterations):
        with span("safara.iteration", iteration=i) as sp:
            info = feedback(region)
            available = register_limit - info.registers
            sp.set(registers=info.registers, available=available)
            if available <= 0:
                report.final_registers = info.registers
                return report
            candidates = collect_candidates(
                region, has_readonly_cache=has_readonly_cache, latency=latency
            )
            if max_candidates is not None:
                candidates = candidates[:max_candidates]
            sp.set(candidates=len(candidates))
            if not candidates:
                report.final_registers = info.registers
                return report
            iteration = SafaraIteration(
                registers_before=info.registers, available=available
            )
            budget = available
            for cand in candidates:
                if cand.registers_needed > budget:
                    continue
                loop = cand.group.loop
                parent = _parent_stmts(region, loop)
                result = replace_group(parent, loop, cand.group, symtab)
                iteration.applied.append(result)
                budget -= cand.registers_needed
            sp.set(replaced=len(iteration.applied))
            if not iteration.applied:
                report.final_registers = info.registers
                return report
            report.iterations.append(iteration)
    report.final_registers = feedback(region).registers
    return report
