"""Scalar-replacement rewriting machinery.

This module implements the *mechanics* of replacing a reuse group with
scalar temporaries; the *policy* of which groups to replace lives in
:mod:`repro.transforms.carr_kennedy` (classic baseline) and
:mod:`repro.transforms.safara` (the paper's algorithm).

Three shapes of replacement, matching :class:`~repro.analysis.reuse.GroupKind`:

``INVARIANT``
    The load is hoisted into the loop preheader (read-only groups only —
    sinking stores past a possibly-zero-trip loop would be unsound).

``INTRA``
    One temporary carries the value within an iteration: the first read
    loads it once; a write computes into the temporary and stores it,
    letting later reads in the same iteration come from the register.

``INTER``
    Rotating temporaries across iterations of a *sequential* loop — the
    Carr-Kennedy pattern of the paper's Figures 4 and 6: preheader
    preloads, a single leading load per iteration, and a register rotation
    at the bottom of the body.  Only read-only groups are rotated (the
    paper's own examples scalarise read chains; forwarding written values
    would need store-queue reasoning that neither prototype does).

Every transformation is semantics-preserving; the test suite checks this
by executing original and transformed IR in the functional interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.reuse import GroupKind, ReuseGroup
from ..ir.expr import (
    ArrayRef,
    BinOp,
    Expr,
    IntConst,
    VarRef,
    fold_constants,
    rewrite,
    substitute,
)
from ..ir.stmt import Assign, If, LocalDecl, Loop, Region, Stmt
from ..ir.symbols import Symbol, SymbolKind, SymbolTable


@dataclass(slots=True)
class ReplacementResult:
    """What one group replacement did (for reporting and cost accounting)."""

    group: ReuseGroup
    temps: list[Symbol] = field(default_factory=list)
    loads_saved_per_iteration: int = 0
    sequentializes: bool = False


class ReplacementError(Exception):
    """The group cannot be replaced in its current form."""


def can_replace(group: ReuseGroup, *, allow_inter: bool) -> bool:
    """Is this group replaceable by the machinery below?

    ``allow_inter`` is False for parallel loops (SAFARA's guard) — INTER
    groups are then rejected rather than sequentialising the loop.
    """
    if group.kind is GroupKind.INTER:
        return allow_inter and not group.has_write
    if group.kind is GroupKind.INVARIANT:
        return not group.has_write
    if group.kind is GroupKind.INTRA:
        return group.loads_saved() > 0
    return False


def replace_group(
    parent_stmts: list[Stmt],
    loop: Loop,
    group: ReuseGroup,
    symtab: SymbolTable,
) -> ReplacementResult:
    """Apply scalar replacement for one reuse group.

    ``parent_stmts`` is the statement list that directly contains ``loop``
    (needed to place preheader loads).  Raises :class:`ReplacementError`
    when the group shape is unsupported.
    """
    if group.kind is GroupKind.INVARIANT:
        return _replace_invariant(parent_stmts, loop, group, symtab)
    if group.kind is GroupKind.INTRA:
        return _replace_intra(loop, group, symtab)
    if group.kind is GroupKind.INTER:
        return _replace_inter(parent_stmts, loop, group, symtab)
    raise ReplacementError(f"unsupported group kind {group.kind}")


# ---------------------------------------------------------------------------
# Individual shapes
# ---------------------------------------------------------------------------


def _elem_type(group: ReuseGroup):
    assert group.array.array is not None
    return group.array.array.elem


def _replace_invariant(
    parent_stmts: list[Stmt],
    loop: Loop,
    group: ReuseGroup,
    symtab: SymbolTable,
) -> ReplacementResult:
    if group.has_write:
        raise ReplacementError("cannot hoist a written invariant reference")
    temp = symtab.fresh(f"{group.array.name}_inv", _elem_type(group))
    gen_ref = group.generator.ref
    mapping: dict[Expr, Expr] = {
        ref: VarRef(temp) for ref in group.distinct_refs
    }
    _substitute_in_body(loop.body, group, mapping)
    idx = parent_stmts.index(loop)
    parent_stmts.insert(idx, LocalDecl(sym=temp, init=gen_ref))
    return ReplacementResult(
        group=group,
        temps=[temp],
        loads_saved_per_iteration=group.loads_saved(),
    )


def _replace_intra(
    loop: Loop, group: ReuseGroup, symtab: SymbolTable
) -> ReplacementResult:
    temp = symtab.fresh(f"{group.array.name}_t", _elem_type(group))
    occs = sorted(group.occurrences, key=lambda o: o.order)
    first = occs[0]
    var_temp = VarRef(temp)

    new_body: list[Stmt] = []
    loaded = first.is_write  # a leading write defines the temp; no load
    refs = set(group.distinct_refs)
    mapping: dict[Expr, Expr] = {ref: var_temp for ref in group.distinct_refs}

    for stmt in loop.body:
        # Membership is decided structurally, not via the occurrences'
        # recorded statement objects: an earlier group's replacement may
        # have rebuilt the body, leaving those identities stale.
        has_read, writes_here = _stmt_uses(stmt, refs)
        if not has_read and not writes_here:
            new_body.append(stmt)
            continue
        assert isinstance(stmt, (Assign, LocalDecl))
        if has_read and not loaded:
            new_body.append(Assign(target=var_temp, value=first.ref))
            loaded = True
        if isinstance(stmt, Assign):
            new_value = substitute(stmt.value, mapping)
            if writes_here and isinstance(stmt.target, ArrayRef) and stmt.target in mapping:
                # 'a[i] = RHS'  ->  't = RHS; a[i] = t'
                target_ref = stmt.target.map_children(
                    lambda idx: substitute(idx, mapping)
                )
                new_body.append(Assign(target=var_temp, value=new_value))
                new_body.append(Assign(target=target_ref, value=var_temp))
                loaded = True
            else:
                new_target = stmt.target
                if isinstance(new_target, ArrayRef):
                    new_target = new_target.map_children(
                        lambda idx: substitute(idx, mapping)
                    )
                new_body.append(Assign(target=new_target, value=new_value))
        else:  # LocalDecl with init
            init = substitute(stmt.init, mapping) if stmt.init is not None else None
            new_body.append(LocalDecl(sym=stmt.sym, init=init))
    loop.body[:] = new_body
    return ReplacementResult(
        group=group,
        temps=[temp],
        loads_saved_per_iteration=group.loads_saved(),
    )


def _replace_inter(
    parent_stmts: list[Stmt],
    loop: Loop,
    group: ReuseGroup,
    symtab: SymbolTable,
) -> ReplacementResult:
    if group.has_write:
        raise ReplacementError("inter-iteration replacement of written groups is unsupported")
    span = group.span
    elem = _elem_type(group)
    temps = [
        symtab.fresh(f"{group.array.name}_r{lag}", elem) for lag in range(span + 1)
    ]

    # Map every occurrence's reference to its lag temporary.
    mapping: dict[Expr, Expr] = {}
    for occ, lag in zip(group.occurrences, group.lags):
        mapping[occ.ref] = VarRef(temps[lag])
    _substitute_in_body(loop.body, group, mapping)

    gen_ref = group.generator.ref
    var = loop.var

    # Preheader: preload temps for lags 1..span with their first-iteration
    # values: t_lag = generator's location at (init - lag*step).
    idx = parent_stmts.index(loop)
    pre: list[Stmt] = []
    for lag in range(1, span + 1):
        shifted = _shift_ref(gen_ref, var, loop.init, -lag * loop.step)
        pre.append(LocalDecl(sym=temps[lag], init=shifted))
    parent_stmts[idx:idx] = pre

    # Body top: the single leading load; body bottom: rotate registers.
    loop.body.insert(0, Assign(target=VarRef(temps[0]), value=gen_ref))
    for lag in range(span, 0, -1):
        loop.body.append(Assign(target=VarRef(temps[lag]), value=VarRef(temps[lag - 1])))

    reads = sum(1 for o in group.occurrences if not o.is_write)
    return ReplacementResult(
        group=group,
        temps=temps,
        loads_saved_per_iteration=max(0, reads - 1),
        sequentializes=loop.is_parallel,
    )


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _shift_ref(ref: ArrayRef, var: Symbol, init: Expr, offset: int) -> ArrayRef:
    """``ref`` with ``var`` replaced by ``init + offset`` (folded)."""

    def rule(e: Expr) -> Expr | None:
        if isinstance(e, VarRef) and e.sym is var:
            if offset == 0:
                return init
            if isinstance(init, IntConst):
                return IntConst(init.value + offset)
            op = "+" if offset > 0 else "-"
            return BinOp(op, init, IntConst(abs(offset)))
        return None

    shifted = fold_constants(rewrite(ref, rule))
    assert isinstance(shifted, ArrayRef)
    return shifted


def _contains_ref(e: Expr | None, refs: set) -> bool:
    """Does ``e`` contain any of ``refs`` as a sub-expression (structural)?"""
    if e is None:
        return False
    return any(node in refs for node in e.walk())


def _stmt_uses(stmt: Stmt, refs: set) -> tuple[bool, bool]:
    """(has_read, writes_here) of the group's refs in one body statement.

    Decided by structure rather than the occurrence records' statement
    identity, which goes stale once another group's replacement rebuilds
    the loop body.
    """
    if isinstance(stmt, Assign):
        writes_here = isinstance(stmt.target, ArrayRef) and stmt.target in refs
        has_read = _contains_ref(stmt.value, refs) or (
            isinstance(stmt.target, ArrayRef)
            and any(_contains_ref(idx, refs) for idx in stmt.target.indices)
        )
        return has_read, writes_here
    if isinstance(stmt, LocalDecl):
        return _contains_ref(stmt.init, refs), False
    return False, False


def _substitute_in_body(
    body: list[Stmt], group: ReuseGroup, mapping: dict[Expr, Expr]
) -> None:
    """Replace the group's references throughout the loop body's immediate
    statements (reads in values/inits, and subscript positions)."""
    for stmt in body:
        if isinstance(stmt, Assign):
            stmt.value = substitute(stmt.value, mapping)
            if isinstance(stmt.target, ArrayRef):
                # Only subscript sub-expressions may be substituted in the
                # target (the stored-to element itself must stay a store).
                stmt.target = stmt.target.map_children(
                    lambda idx: substitute(idx, mapping)
                )
        elif isinstance(stmt, LocalDecl) and stmt.init is not None:
            stmt.init = substitute(stmt.init, mapping)
