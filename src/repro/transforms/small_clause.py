"""Semantics of the proposed ``small`` clause (paper Section IV-B).

On 64-bit hosts, array offsets default to 64-bit integers, and a 64-bit
value occupies **two** 32-bit GPU registers.  ``small(A)`` promises that
``A`` spans less than 4 GB, so its flattened offset fits in a 32-bit
integer — halving the register cost of every offset computation on ``A``.

Two sources mark an array small:

* the explicit clause;
* static shape detection — when the array's size is a compile-time
  constant under 4 GB the compiler proves it itself (the paper: "when the
  array is a static array ... the compiler can detect the array size").
"""

from __future__ import annotations

from ..lang.errors import SemanticError
from ..ir.stmt import Region
from ..ir.symbols import Symbol, SymbolTable

#: The 4 GB boundary under which 32-bit offsets are safe (byte offsets are
#: signed in generated code, but elements are >= 4 bytes, so 2**32 bytes is
#: the paper's stated threshold).
SMALL_LIMIT_BYTES = 4 * 1024**3


def small_arrays(region: Region, symtab: SymbolTable) -> set[Symbol]:
    """Arrays of the region that may use 32-bit offset arithmetic."""
    out: set[Symbol] = set()
    for name in region.directive.small:
        sym = symtab.lookup(name)
        if sym is None or sym.array is None:
            raise SemanticError(f"small clause names unknown array {name!r}")
        out.add(sym)
    for sym in symtab.arrays():
        size = sym.array.static_size_bytes() if sym.array else None
        if size is not None and size < SMALL_LIMIT_BYTES:
            out.add(sym)
    return out


def offset_bits(sym: Symbol, small: set[Symbol]) -> int:
    """Width of the offset arithmetic for one array (64 unless small)."""
    return 32 if sym in small else 64
