"""Sequential-loop unrolling (the paper's future work, Section VII).

"In future work, we plan to combine other classical optimizations like
loop unrolling and memory vectorization with SAFARA" — this module
implements that combination's first half.  Unrolling a sequential loop by
``U`` turns inter-iteration reuse (rotating registers, one load per
iteration) into *intra*-iteration reuse across the unrolled copies, which
SAFARA then exploits with plain temporaries — fewer register rotations
per element and amortised loop overhead.

Shape handled: upward (+1 step) counted loops with ``<`` / ``<=`` bounds —
the shape every benchmark seq loop here has.  The transformation is::

    for (v = lo; v < hi; v++) BODY(v)
      ==>
    full = (hi - lo) / U * U;             // folded when bounds are static
    for (v = lo; v < lo + full; v += U) { BODY(v); BODY(v+1); ... }
    for (v = lo + full; v < hi; v++) BODY(v)   // remainder

Each unrolled copy gets fresh local symbols (flat symbol table) and its
loop-variable uses substituted with ``v + j``.  Correctness is covered by
interpreter equivalence tests, including non-divisible trip counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.expr import (
    ArrayRef,
    BinOp,
    Expr,
    IntConst,
    VarRef,
    fold_constants,
    rewrite,
)
from ..ir.stmt import Assign, If, LocalDecl, Loop, Region, Stmt
from ..ir.symbols import Symbol, SymbolTable
from .carr_kennedy import _parent_stmts


@dataclass(slots=True)
class UnrollReport:
    unrolled: list[Loop] = field(default_factory=list)
    factor: int = 1


class UnrollError(Exception):
    """The loop shape is not unrollable."""


def can_unroll(loop: Loop) -> bool:
    """Upward unit-stride sequential loops with </<= bounds only."""
    return (
        not loop.is_parallel
        and loop.step == 1
        and loop.cond_op in ("<", "<=")
    )


def _clone_expr(e: Expr, var: Symbol, offset: int, local_map: dict[Symbol, Symbol]) -> Expr:
    def rule(node: Expr) -> Expr | None:
        if isinstance(node, VarRef):
            if node.sym is var:
                if offset == 0:
                    return None
                return BinOp("+", VarRef(var), IntConst(offset))
            mapped = local_map.get(node.sym)
            if mapped is not None:
                return VarRef(mapped)
        return None

    return fold_constants(rewrite(e, rule))


def _clone_stmts(
    stmts: list[Stmt],
    var: Symbol,
    offset: int,
    symtab: SymbolTable,
    local_map: dict[Symbol, Symbol],
) -> list[Stmt]:
    out: list[Stmt] = []
    for stmt in stmts:
        if isinstance(stmt, LocalDecl):
            fresh = symtab.fresh(f"{stmt.sym.name}_u{offset}", stmt.sym.stype)
            local_map[stmt.sym] = fresh
            init = (
                _clone_expr(stmt.init, var, offset, local_map)
                if stmt.init is not None
                else None
            )
            out.append(LocalDecl(sym=fresh, init=init))
        elif isinstance(stmt, Assign):
            target = stmt.target
            if isinstance(target, ArrayRef):
                target = _clone_expr(target, var, offset, local_map)
            elif target.sym in local_map:
                target = VarRef(local_map[target.sym])
            out.append(
                Assign(target=target, value=_clone_expr(stmt.value, var, offset, local_map))
            )
        elif isinstance(stmt, If):
            out.append(
                If(
                    cond=_clone_expr(stmt.cond, var, offset, local_map),
                    then_body=_clone_stmts(stmt.then_body, var, offset, symtab, local_map),
                    else_body=_clone_stmts(stmt.else_body, var, offset, symtab, local_map),
                )
            )
        elif isinstance(stmt, Loop):
            fresh_var = symtab.fresh(f"{stmt.var.name}_u{offset}", stmt.var.stype)
            local_map[stmt.var] = fresh_var
            inner = Loop(
                var=fresh_var,
                init=_clone_expr(stmt.init, var, offset, local_map),
                cond_op=stmt.cond_op,
                bound=_clone_expr(stmt.bound, var, offset, local_map),
                step=stmt.step,
                body=_clone_stmts(stmt.body, var, offset, symtab, local_map),
                directive=stmt.directive,
            )
            out.append(inner)
        else:
            raise UnrollError(f"cannot clone statement {type(stmt).__name__}")
    return out


def unroll_loop(
    parent_stmts: list[Stmt],
    loop: Loop,
    symtab: SymbolTable,
    factor: int,
) -> Loop:
    """Unroll one loop in place; returns the remainder loop.

    The original :class:`Loop` object becomes the main (unrolled) loop so
    enclosing references stay valid; a remainder loop is inserted after it.
    """
    if factor < 2:
        raise UnrollError("unroll factor must be >= 2")
    if not can_unroll(loop):
        raise UnrollError("loop shape not unrollable (need seq, +1 step, </<=)")

    lo = loop.init
    hi = loop.bound
    # Trip count n; for '<=' bounds use hi+1 as the exclusive limit.
    limit: Expr = hi if loop.cond_op == "<" else BinOp("+", hi, IntConst(1))
    n = BinOp("-", limit, lo)
    full = BinOp("*", BinOp("/", n, IntConst(factor)), IntConst(factor))
    main_limit = fold_constants(BinOp("+", lo, full))

    # Build the unrolled body: copy 0 keeps the original statements (and
    # their symbols); copies 1..U-1 are clones at v+j.
    original_body = loop.body
    new_body: list[Stmt] = list(original_body)
    for j in range(1, factor):
        local_map: dict[Symbol, Symbol] = {}
        new_body.extend(_clone_stmts(original_body, loop.var, j, symtab, local_map))

    # Remainder: one clean clone of the body with the loop variable mapped
    # to a fresh symbol (shared local_map keeps cross-statement local
    # references consistent).
    remainder_var = symtab.fresh(f"{loop.var.name}_rem", loop.var.stype)
    dummy = Symbol("__dummy__", loop.var.stype)
    rem_map: dict[Symbol, Symbol] = {loop.var: remainder_var}
    remainder_body = _clone_stmts(original_body, dummy, 0, symtab, rem_map)

    remainder = Loop(
        var=remainder_var,
        init=main_limit,
        cond_op=loop.cond_op,
        bound=hi,
        step=1,
        body=remainder_body,
        directive=loop.directive,
    )

    loop.body = new_body
    loop.cond_op = "<"
    loop.bound = main_limit
    loop.step = factor

    idx = parent_stmts.index(loop)
    parent_stmts.insert(idx + 1, remainder)
    return remainder


def apply_unrolling(
    region: Region,
    symtab: SymbolTable,
    factor: int = 2,
    innermost_only: bool = True,
) -> UnrollReport:
    """Unroll the region's sequential loops (innermost first/only)."""
    from ..analysis.loopinfo import analyze_loops

    report = UnrollReport(factor=factor)
    info = analyze_loops(region)
    candidates = [l for l in info.loops if can_unroll(l)]
    if innermost_only:
        inner_ids = {
            l.loop_id for l in candidates if not info.inner_loops(l)
        }
        candidates = [l for l in candidates if l.loop_id in inner_ids]
    for loop in candidates:
        parent = _parent_stmts(region, loop)
        unroll_loop(parent, loop, symtab, factor)
        report.unrolled.append(loop)
    return report
