"""repro.tune — the feedback-guided per-kernel autotuner.

Searches the optimization-config space — register cap, SAFARA on/off and
candidate budget, ``dim``/``small`` clause honoring, unroll factor — for
the point with the best modeled runtime, with pluggable strategies
(``exhaustive`` / ``greedy`` / ``beam``), cost-model pruning before any
backend compile, batched evaluation through the session compile cache,
and a resumable JSON ledger (``docs/tuning.md``).

This package consumes the compiler exclusively through the stable
:mod:`repro` facade; note that ``repro.tune`` the *attribute* of the
``repro`` package is the :func:`tune` function (this module stays
importable as usual).
"""

from .ledger import TuneLedger, task_key
from .space import (
    AXES,
    KnobSpace,
    TrialPoint,
    canonicalize,
    default_space,
    prune_points,
    safara_candidate_ceiling,
    source_uses_clauses,
)
from .strategies import (
    STRATEGIES,
    BeamStrategy,
    ExhaustiveStrategy,
    GreedyStrategy,
    SearchContext,
    Strategy,
    make_strategy,
)
from .tuner import RESULT_VERSION, TrialResult, TuneResult, Tuner, tune

__all__ = [
    "AXES",
    "STRATEGIES",
    "BeamStrategy",
    "ExhaustiveStrategy",
    "GreedyStrategy",
    "KnobSpace",
    "RESULT_VERSION",
    "SearchContext",
    "Strategy",
    "TrialPoint",
    "TrialResult",
    "TuneLedger",
    "TuneResult",
    "Tuner",
    "canonicalize",
    "default_space",
    "make_strategy",
    "prune_points",
    "safara_candidate_ceiling",
    "source_uses_clauses",
    "task_key",
    "tune",
    "tune_error_code",
]

#: The serve-protocol error code tuning failures map onto (kept here so
#: the broker and the errors module agree by construction).
tune_error_code = "tune_error"
