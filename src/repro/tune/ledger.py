"""The resumable tuning ledger: scored trial points, persisted as JSON.

A tuning run over N points is minutes of SAFARA feedback compiles; a
killed or re-run tune should not repeat the work.  The ledger keys every
scored point under a *task key* — a content hash of (source, base
config, env, launches), built exactly like the compile cache's
:func:`~repro.pipeline.cache.cache_key` — so a warm re-tune of the same
task replays scores from disk and performs **zero** backend compiles,
while any change to the source, base config, problem size, or launch
counts starts a fresh task.

File layout (one JSON document)::

    {"version": 1,
     "tasks": {"<task key>": {"points": {"<point key>": {...score...}}}}}

Writes are atomic (tmp file + ``os.replace``) and the loader tolerates a
corrupt or alien file by starting empty — a ledger must never be able to
take a tuning run down.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path
from typing import Any, Mapping

#: Bump when the per-point score payload changes shape; older ledgers
#: then read as empty and re-tune from scratch.
FORMAT_VERSION = 1


def task_key(
    source: str,
    base,
    *,
    env: Mapping[str, int] | None = None,
    launches: "dict | list | int" = 1,
) -> str:
    """SHA-256 task identity: same recipe as the compile cache's key
    (frozen-dataclass ``repr`` covers every config field, arch included),
    plus the launch counts the scores depend on."""
    h = hashlib.sha256()
    h.update(source.encode())
    h.update(b"\x00")
    h.update(repr(base).encode())
    h.update(b"\x00")
    if env:
        h.update(repr(sorted(env.items())).encode())
    h.update(b"\x00")
    h.update(repr(launches).encode())
    return h.hexdigest()


class TuneLedger:
    """Thread-safe, load-once/flush-explicitly JSON ledger."""

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self._lock = threading.Lock()
        self._dirty = False
        self._data = self._load()

    def _load(self) -> dict:
        empty = {"version": FORMAT_VERSION, "tasks": {}}
        try:
            raw = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return empty
        if (
            not isinstance(raw, dict)
            or raw.get("version") != FORMAT_VERSION
            or not isinstance(raw.get("tasks"), dict)
        ):
            return empty
        return raw

    # -- core API ----------------------------------------------------------

    def get(self, task: str, point: str) -> dict | None:
        """The stored score for ``point`` under ``task``, or ``None``."""
        with self._lock:
            entry = self._data["tasks"].get(task, {}).get("points", {}).get(point)
            return dict(entry) if isinstance(entry, dict) else None

    def record(self, task: str, point: str, score: dict[str, Any]) -> None:
        """Stage a score in memory; call :meth:`flush` to persist."""
        with self._lock:
            points = self._data["tasks"].setdefault(task, {"points": {}})
            points.setdefault("points", {})[point] = dict(score)
            self._dirty = True

    def flush(self) -> None:
        """Atomically persist the ledger (merging with any concurrent
        writer's on-disk tasks: last-writer-wins per point, union of
        tasks)."""
        with self._lock:
            if not self._dirty:
                return
            on_disk = TuneLedger.__new__(TuneLedger)
            on_disk.path = self.path
            merged = on_disk._load()
            for task, body in self._data["tasks"].items():
                target = merged["tasks"].setdefault(task, {"points": {}})
                target.setdefault("points", {}).update(body.get("points", {}))
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp = self.path.parent / (
                f".tmp-{os.getpid()}-{threading.get_ident()}-{self.path.name}"
            )
            try:
                tmp.write_text(json.dumps(merged, indent=1, sort_keys=True))
                os.replace(tmp, self.path)
            finally:
                tmp.unlink(missing_ok=True)
            self._data = merged
            self._dirty = False

    # -- introspection -----------------------------------------------------

    def points(self, task: str) -> dict[str, dict]:
        with self._lock:
            return dict(self._data["tasks"].get(task, {}).get("points", {}))

    def __len__(self) -> int:
        with self._lock:
            return sum(
                len(body.get("points", {}))
                for body in self._data["tasks"].values()
            )

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "path": str(self.path),
                "tasks": len(self._data["tasks"]),
                "points": sum(
                    len(b.get("points", {}))
                    for b in self._data["tasks"].values()
                ),
            }
