"""The autotuner's search space: knob points over a base configuration.

A :class:`TrialPoint` is one assignment of the tunable knobs — register
cap, SAFARA on/off and its per-iteration candidate budget, ``small``/
``dim`` clause honoring, unroll factor, equality saturation on/off and
its extraction-weight override — and maps onto a
:class:`~repro.compiler.options.CompilerConfig` via
:meth:`TrialPoint.apply` (which goes through ``derive()``, so a typoed
knob name fails loudly instead of tuning nothing).

:func:`prune_points` removes *provably equivalent* points before any
backend compile, using only front-end facts:

* clauses the source never writes cannot change codegen, so the
  ``honor_small``/``honor_dim`` axes collapse when the directives are
  absent (``dim``/``small`` inference — the tuner reads the source, not
  the user's flags);
* with SAFARA off, the candidate budget is dead;
* with saturation off, the extraction-weight override is dead — and an
  override spelling out the extractor's defaults equals ``None``;
* a candidate budget at or above the cost model's candidate count for
  the region (see :func:`safara_candidate_ceiling`) never truncates —
  SAFARA's per-iteration candidate list only shrinks as replacements
  remove reuse groups — so such budgets equal "unlimited";
* a register cap at or above the architecture's per-thread maximum is
  the same as no cap.

Every rule merges points whose compiled programs are bit-identical, so
pruning can never discard the true best configuration (the property
test in ``tests/tune/test_space.py`` checks this on the paper's table
kernels).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace

#: Register caps swept by default: "no cap" plus the occupancy-tier
#: boundaries the paper's Table II discussion turns on (a Kepler SM's
#: 65536 registers / 2048 threads = 32 per thread for full occupancy;
#: 48/64/128 are the next tiers down).
DEFAULT_REGISTER_LIMITS: tuple[int | None, ...] = (None, 32, 48, 64, 128)

#: Per-iteration SAFARA candidate budgets (None = the paper's unlimited).
DEFAULT_CANDIDATE_BUDGETS: tuple[int | None, ...] = (None, 2, 4)

#: Unroll factors (1 = off; 2 = the paper's future-work combination).
DEFAULT_UNROLL_FACTORS: tuple[int, ...] = (1, 2)


@dataclass(frozen=True, slots=True)
class TrialPoint:
    """One assignment of every tunable knob."""

    register_limit: int | None = None
    safara: bool = True
    safara_max_candidates: int | None = None
    honor_small: bool = True
    honor_dim: bool = True
    unroll_factor: int = 1
    #: Target architecture: the canonical registry key of a profile, or
    #: ``None`` for the base config's arch.  A first-class axis, so one
    #: ``repro tune --fleet`` run searches configs *across* devices.
    arch: str | None = None
    #: Equality saturation (the :mod:`repro.esat` pass) on/off.
    saturate: bool = False
    #: Extraction-weight override as sorted ``(key, value)`` pairs
    #: (hashable; ``None`` = the extractor's defaults).  Dead unless
    #: ``saturate`` is on.
    esat_weights: "tuple[tuple[str, float], ...] | None" = None

    def key(self) -> str:
        """Stable content key for the ledger and within-run dedup (the
        arch/saturation suffixes appear only off their defaults, so
        ledgers written before those axes existed stay replayable)."""
        rl = "none" if self.register_limit is None else self.register_limit
        cand = (
            "none"
            if self.safara_max_candidates is None
            else self.safara_max_candidates
        )
        key = (
            f"rl={rl};safara={int(self.safara)};cand={cand};"
            f"small={int(self.honor_small)};dim={int(self.honor_dim)};"
            f"unroll={self.unroll_factor}"
        )
        if self.arch is not None:
            key += f";arch={self.arch}"
        if self.saturate:
            key += ";sat=1"
        if self.esat_weights is not None:
            pairs = ",".join(f"{k}:{v:g}" for k, v in sorted(self.esat_weights))
            key += f";esatw={pairs}"
        return key

    def apply(self, base) -> "object":
        """The :class:`CompilerConfig` this point denotes over ``base``."""
        overrides = dict(
            name=f"tune({self.key()})",
            register_limit=self.register_limit,
            safara=self.safara,
            safara_max_candidates=self.safara_max_candidates,
            honor_small=self.honor_small,
            honor_dim=self.honor_dim,
            unroll_factor=self.unroll_factor,
            saturate=self.saturate,
            esat_extraction_weights=self.esat_weights,
        )
        if self.arch is not None:
            overrides["arch"] = self.arch
        return base.derive(**overrides)

    def as_dict(self) -> dict:
        return {
            "register_limit": self.register_limit,
            "safara": self.safara,
            "safara_max_candidates": self.safara_max_candidates,
            "honor_small": self.honor_small,
            "honor_dim": self.honor_dim,
            "unroll_factor": self.unroll_factor,
            "arch": self.arch,
            "saturate": self.saturate,
            "esat_weights": (
                None
                if self.esat_weights is None
                else {k: v for k, v in self.esat_weights}
            ),
        }


#: Knob-axis names in the order coordinate-descent visits them (most
#: impactful first: the device itself, then per the paper clauses, then
#: SAFARA, then caps).
AXES = (
    "arch",
    "honor_small",
    "honor_dim",
    "safara",
    "saturate",
    "register_limit",
    "safara_max_candidates",
    "unroll_factor",
    "esat_weights",
)


@dataclass(frozen=True, slots=True)
class KnobSpace:
    """The cartesian knob space a tuning run searches."""

    register_limits: tuple = DEFAULT_REGISTER_LIMITS
    safara: tuple = (True, False)
    candidate_budgets: tuple = DEFAULT_CANDIDATE_BUDGETS
    honor_small: tuple = (True, False)
    honor_dim: tuple = (True, False)
    unroll_factors: tuple = DEFAULT_UNROLL_FACTORS
    #: Arch axis values (canonical registry keys; ``None`` = base arch).
    #: Single-valued by default — fleet tuning widens it.
    archs: tuple = (None,)
    #: Equality-saturation axis.  Single-valued (off) by default so
    #: pre-existing spaces, ledgers and budgets are unchanged; widen to
    #: ``(False, True)`` to let the tuner weigh the esat pass.
    saturate: tuple = (False,)
    #: Extraction-weight axis: ``None`` = extractor defaults; widen with
    #: sorted ``(key, value)``-pair tuples to sweep cost models.
    esat_weights: tuple = (None,)

    def axis_values(self, axis: str) -> tuple:
        return {
            "register_limit": self.register_limits,
            "safara": self.safara,
            "safara_max_candidates": self.candidate_budgets,
            "honor_small": self.honor_small,
            "honor_dim": self.honor_dim,
            "unroll_factor": self.unroll_factors,
            "arch": self.archs,
            "saturate": self.saturate,
            "esat_weights": self.esat_weights,
        }[axis]

    @property
    def size(self) -> int:
        n = 1
        for axis in AXES:
            n *= len(self.axis_values(axis))
        return n

    def points(self) -> list[TrialPoint]:
        """Every point, in a deterministic order."""
        out = []
        for arch, rl, sa, cand, small, dim, unroll, sat, ew in itertools.product(
            self.archs,
            self.register_limits,
            self.safara,
            self.candidate_budgets,
            self.honor_small,
            self.honor_dim,
            self.unroll_factors,
            self.saturate,
            self.esat_weights,
        ):
            out.append(
                TrialPoint(
                    register_limit=rl,
                    safara=sa,
                    safara_max_candidates=cand,
                    honor_small=small,
                    honor_dim=dim,
                    unroll_factor=unroll,
                    arch=arch,
                    saturate=sat,
                    esat_weights=ew,
                )
            )
        return out

    def reference_point(self) -> TrialPoint:
        """The point the run scores first and reports speedup against:
        SAFARA on, unlimited candidates, clauses honored (where the axis
        allows), no cap, no unrolling — i.e. the paper's full
        ``OpenUH(SAFARA+small+dim)`` default."""
        return TrialPoint(
            register_limit=None,
            safara=True,
            safara_max_candidates=None,
            honor_small=True in self.honor_small,
            honor_dim=True in self.honor_dim,
            unroll_factor=1,
        )


def source_uses_clauses(source: str) -> tuple[bool, bool]:
    """(uses_small, uses_dim) — inferred from directive lines only, so
    array subscripts or comments cannot fake a clause."""
    uses_small = uses_dim = False
    for line in source.splitlines():
        stripped = line.strip()
        if not stripped.startswith("#pragma"):
            continue
        if "small(" in stripped:
            uses_small = True
        if "dim(" in stripped:
            uses_dim = True
    return uses_small, uses_dim


def default_space(source: str) -> KnobSpace:
    """The default knob space for ``source``, with the clause axes
    auto-inferred: a clause the source never writes contributes a single
    ``False`` value instead of a dead axis."""
    uses_small, uses_dim = source_uses_clauses(source)
    return KnobSpace(
        honor_small=(True, False) if uses_small else (False,),
        honor_dim=(True, False) if uses_dim else (False,),
    )


def safara_candidate_ceiling(source: str, base, *, filename: str = "<string>"):
    """Max per-region SAFARA candidate count after the pipeline prefix
    (autopar + LICM) at unroll 1, from the cost model alone — no backend
    compile.  ``None`` when the ceiling cannot be computed soundly (a
    Carr-Kennedy base mutates the region before SAFARA would see it).
    """
    if getattr(base, "carr_kennedy", False):
        return None
    from ..ir.builder import build_module
    from ..lang.parser import parse_program
    from ..transforms.autopar import auto_parallelize
    from ..transforms.licm import apply_licm
    from ..transforms.safara import collect_candidates

    fn = build_module(parse_program(source, filename)).functions[0]
    has_roc = base.readonly_cache and base.arch.has_readonly_cache
    latency = base.latency or base.arch.latency
    ceiling = 0
    for region in fn.regions():
        auto_parallelize(region)
        apply_licm(region, fn.symtab)
        count = len(
            collect_candidates(region, has_readonly_cache=has_roc, latency=latency)
        )
        ceiling = max(ceiling, count)
    return ceiling


def canonicalize(
    point: TrialPoint,
    *,
    uses_small: bool,
    uses_dim: bool,
    max_register_limit: int | None = None,
    candidate_ceiling: int | None = None,
    base_arch: str | None = None,
    max_register_limits: "dict | None" = None,
    candidate_ceilings: "dict | None" = None,
) -> TrialPoint:
    """The representative of ``point``'s equivalence class (see module
    docstring for the soundness argument of each collapse).

    With the arch axis in play the register-cap and candidate-budget
    collapses are arch-dependent (a 256-cap is dead on Kepler's 255-max
    but live on CDNA2); callers pass ``max_register_limits`` /
    ``candidate_ceilings`` keyed by arch axis value (``None`` = base),
    and ``base_arch`` (the base config's canonical key) so a point that
    names the base arch explicitly merges with the ``None`` spelling.
    """
    p = point
    if p.arch is not None and base_arch is not None and p.arch == base_arch:
        p = replace(p, arch=None)
    if max_register_limits is not None:
        max_register_limit = max_register_limits.get(p.arch, max_register_limit)
    if candidate_ceilings is not None:
        candidate_ceiling = candidate_ceilings.get(p.arch, candidate_ceiling)
    if not uses_small and p.honor_small:
        p = replace(p, honor_small=False)
    if not uses_dim and p.honor_dim:
        p = replace(p, honor_dim=False)
    if not p.safara and p.safara_max_candidates is not None:
        p = replace(p, safara_max_candidates=None)
    if not p.saturate and p.esat_weights is not None:
        p = replace(p, esat_weights=None)
    if p.saturate and p.esat_weights is not None:
        from ..esat.extract import DEFAULT_WEIGHTS

        if dict(p.esat_weights) == DEFAULT_WEIGHTS:
            p = replace(p, esat_weights=None)
    if (
        p.safara
        and p.safara_max_candidates is not None
        and candidate_ceiling is not None
        and p.unroll_factor == 1
        and p.safara_max_candidates >= candidate_ceiling
    ):
        p = replace(p, safara_max_candidates=None)
    if (
        p.register_limit is not None
        and max_register_limit is not None
        and p.register_limit >= max_register_limit
    ):
        p = replace(p, register_limit=None)
    return p


def prune_points(
    points: list[TrialPoint],
    *,
    uses_small: bool,
    uses_dim: bool,
    max_register_limit: int | None = None,
    candidate_ceiling: int | None = None,
    base_arch: str | None = None,
    max_register_limits: "dict | None" = None,
    candidate_ceilings: "dict | None" = None,
) -> tuple[list[TrialPoint], dict[str, TrialPoint], int]:
    """Collapse ``points`` to canonical representatives.

    Returns ``(unique, mapping, pruned)``: the representatives in first-
    seen order, a map from every original point's key to its
    representative, and how many points were merged away.
    """
    unique: list[TrialPoint] = []
    seen: dict[str, TrialPoint] = {}
    mapping: dict[str, TrialPoint] = {}
    for point in points:
        canon = canonicalize(
            point,
            uses_small=uses_small,
            uses_dim=uses_dim,
            max_register_limit=max_register_limit,
            candidate_ceiling=candidate_ceiling,
            base_arch=base_arch,
            max_register_limits=max_register_limits,
            candidate_ceilings=candidate_ceilings,
        )
        mapping[point.key()] = canon
        ck = canon.key()
        if ck not in seen:
            seen[ck] = canon
            unique.append(canon)
    return unique, mapping, len(points) - len(unique)
