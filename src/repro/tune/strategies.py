"""Search strategies over the knob space.

Every strategy receives a :class:`SearchContext` (built by the tuner)
whose ``evaluate()`` is the only way to score points: it dedups against
already-scored keys, consults the tuning ledger, batches cache misses
through ``CompilerSession.compile_many``, and enforces the trial budget.
The tuner scores the *reference point first*, before any strategy runs,
so the reported best can never be worse than the default configuration
regardless of how a strategy explores.

Strategies:

* ``exhaustive`` — every canonical point, in space order (the ground
  truth; bounded only by the budget);
* ``greedy``     — coordinate descent from the reference: sweep one knob
  axis at a time, move to the best seen, repeat until a full pass stops
  improving;
* ``beam``       — cost-model-guided: order points by an analytic prior
  (occupancy at the register cap, candidate-cost mass, clause credit),
  evaluate in prior order, stop after ``patience`` batches without
  improvement.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

from ..errors import TuneError
from .space import AXES, KnobSpace, TrialPoint


@dataclass(slots=True)
class SearchContext:
    """What a strategy may see and do (built by the tuner)."""

    space: KnobSpace
    #: Canonical unique points (reference included), deterministic order.
    points: list[TrialPoint]
    reference: TrialPoint
    #: Score a batch; returns results for the points actually scored
    #: (dedup + budget may shrink the batch).
    evaluate: Callable[[list[TrialPoint]], list]
    #: Canonicalize an arbitrary point into the pruned space.
    canonical: Callable[[TrialPoint], TrialPoint]
    #: Analytic prior: lower = more promising (ordering only).
    prior: Callable[[TrialPoint], float]
    #: Trials still allowed (may be infinite).
    remaining: Callable[[], float]
    #: Current best scored trial (the reference is always scored first).
    best: Callable[[], "object"]
    scored: dict[str, "object"] = field(default_factory=dict)


def _chunks(items: list, size: int):
    for i in range(0, len(items), size):
        yield items[i : i + size]


class Strategy:
    name = "strategy"

    def run(self, ctx: SearchContext) -> None:
        raise NotImplementedError


class ExhaustiveStrategy(Strategy):
    """Grid search: every canonical point, batched for the compile pool."""

    name = "exhaustive"

    def __init__(self, batch_size: int = 8):
        self.batch_size = batch_size

    def run(self, ctx: SearchContext) -> None:
        pending = [p for p in ctx.points if p.key() not in ctx.scored]
        for batch in _chunks(pending, self.batch_size):
            if ctx.remaining() <= 0:
                return
            ctx.evaluate(batch)


class GreedyStrategy(Strategy):
    """Coordinate descent from the reference point.

    One pass sweeps every axis (in :data:`~repro.tune.space.AXES` order),
    scoring the current point varied along that axis and jumping to the
    best trial seen so far; passes repeat until one completes with no
    improvement.  Cheap (≈ sum of axis sizes per pass, not their
    product) but can miss knob interactions the exhaustive grid finds.
    """

    name = "greedy"

    def __init__(self, max_passes: int = 4):
        self.max_passes = max_passes

    def run(self, ctx: SearchContext) -> None:
        current = ctx.best().point
        for _ in range(self.max_passes):
            improved = False
            for axis in AXES:
                if ctx.remaining() <= 0:
                    return
                variants: dict[str, TrialPoint] = {}
                for value in ctx.space.axis_values(axis):
                    p = ctx.canonical(replace(current, **{axis: value}))
                    if p.key() != current.key():
                        variants[p.key()] = p
                if not variants:
                    continue
                ctx.evaluate(list(variants.values()))
                best = ctx.best()
                if best.point.key() != current.key():
                    current = best.point
                    improved = True
            if not improved:
                return


class BeamStrategy(Strategy):
    """Prior-ordered search with early stopping.

    Points are sorted by the cost-model prior and evaluated ``width`` at
    a time; after ``patience`` consecutive batches without a new best,
    the remaining (least promising) tail is skipped.
    """

    name = "beam"

    def __init__(self, width: int = 8, patience: int = 2):
        self.width = width
        self.patience = patience

    def run(self, ctx: SearchContext) -> None:
        pending = [p for p in ctx.points if p.key() not in ctx.scored]
        pending.sort(key=lambda p: (ctx.prior(p), p.key()))
        stale = 0
        for batch in _chunks(pending, self.width):
            if ctx.remaining() <= 0 or stale >= self.patience:
                return
            best_before = ctx.best().model_ms
            ctx.evaluate(batch)
            stale = 0 if ctx.best().model_ms < best_before else stale + 1


#: Registered strategies (factories, so each run gets fresh state).
STRATEGIES: dict[str, Callable[[], Strategy]] = {
    "exhaustive": ExhaustiveStrategy,
    "greedy": GreedyStrategy,
    "beam": BeamStrategy,
}


def make_strategy(spec: "str | Strategy") -> Strategy:
    """Resolve a strategy name (or pass an instance through)."""
    if isinstance(spec, Strategy):
        return spec
    factory = STRATEGIES.get(spec)
    if factory is None:
        known = ", ".join(sorted(STRATEGIES))
        raise TuneError(f"unknown strategy {spec!r}; known: {known}")
    return factory()
