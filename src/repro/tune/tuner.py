"""The tuner core: score trial points, track the best, persist the ledger.

One :func:`tune` call searches the knob space for one (source, base
config, env, launches) task:

1. build the space (clause axes auto-inferred from the source) and
   collapse provably-equivalent points via the cost model — no backend
   compile happens for a pruned point, ever;
2. score the *reference* point (the paper's full
   ``OpenUH(SAFARA+small+dim)`` default) so the result can never be
   worse than the default configuration;
3. let the strategy pick further points; every batch goes through the
   tuning ledger (warm re-tunes replay scores, zero compiles), then
   ``CompilerSession.compile_many`` (two-tier compile cache, thread
   pool), then the analytic timing model.

Observability: the whole run is a ``tune`` span; every scored point —
ledger hit or fresh — is a ``tune.trial`` span, so a ``--trace`` export
shows the complete search.  Metrics (session registry): ``tune.trials``,
``tune.ledger.hits`` / ``.misses``, ``tune.pruned``, ``tune.batches``,
``tune.trial_ms`` (histogram) and the ``tune.best_model_ms`` gauge.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from .. import BASE, CompileJob, CompilerSession, default_session
from ..errors import TuneError
from ..gpu.arch import arch_key, get_arch
from ..gpu.occupancy import compute_occupancy
from ..obs.tracer import span
from .ledger import TuneLedger, task_key
from .space import (
    KnobSpace,
    TrialPoint,
    canonicalize,
    default_space,
    prune_points,
    safara_candidate_ceiling,
    source_uses_clauses,
)
from .strategies import SearchContext, Strategy, make_strategy

#: Golden result-schema version (``repro tune --json`` consumers pin it).
#: v2: trial points carry an ``arch`` knob and the top level gains
#: ``per_arch_best`` (the fleet axis).
RESULT_VERSION = 2


@dataclass(slots=True)
class TrialResult:
    """One scored trial point."""

    point: TrialPoint
    config_name: str
    model_ms: float
    max_registers: int
    min_occupancy: float
    #: ``"evaluated"`` (compiled + timed this run) or ``"ledger"``
    #: (replayed from a previous run's ledger entry).
    source: str = "evaluated"
    trial_ms: float = 0.0

    def as_dict(self) -> dict:
        return {
            "point": self.point.as_dict(),
            "config": self.config_name,
            "model_ms": round(self.model_ms, 6),
            "max_registers": self.max_registers,
            "min_occupancy": round(self.min_occupancy, 4),
            "source": self.source,
        }


@dataclass(slots=True)
class TuneResult:
    """The outcome of one tuning run (``as_dict`` is the golden schema)."""

    strategy: str
    budget: int | None
    task_key: str
    space_size: int
    unique_points: int
    pruned: int
    reference: TrialResult
    best: TrialResult
    best_config: "object"
    trials: list[TrialResult] = field(default_factory=list)
    ledger_path: str | None = None
    ledger_hits: int = 0
    ledger_misses: int = 0
    #: Best trial per arch axis value, keyed by canonical registry key
    #: (the base config's arch included) — the ``--fleet`` result table.
    per_arch_best: dict[str, TrialResult] = field(default_factory=dict)

    @property
    def evaluated(self) -> int:
        return sum(1 for t in self.trials if t.source == "evaluated")

    @property
    def speedup_over_reference(self) -> float:
        return self.reference.model_ms / self.best.model_ms

    def as_dict(self) -> dict:
        return {
            "version": RESULT_VERSION,
            "strategy": self.strategy,
            "budget": self.budget,
            "task_key": self.task_key,
            "space": {
                "size": self.space_size,
                "unique": self.unique_points,
                "pruned": self.pruned,
            },
            "evaluated": self.evaluated,
            "ledger": {
                "path": self.ledger_path,
                "hits": self.ledger_hits,
                "misses": self.ledger_misses,
            },
            "reference": self.reference.as_dict(),
            "best": self.best.as_dict(),
            "speedup_over_reference": round(self.speedup_over_reference, 6),
            "per_arch_best": {
                key: t.as_dict() for key, t in sorted(self.per_arch_best.items())
            },
            "trials": [t.as_dict() for t in self.trials],
        }


class Tuner:
    """State of one tuning run; :func:`tune` is the public entrypoint."""

    def __init__(
        self,
        source: str,
        *,
        env: dict[str, int],
        launches: "dict | list | int" = 1,
        base=BASE,
        budget: int | None = None,
        session: CompilerSession | None = None,
        ledger: "TuneLedger | str | os.PathLike | None" = None,
        kernel_name: str | None = None,
        filename: str = "<string>",
    ):
        if env is None:
            raise TuneError("tune() requires env= (the problem sizes)")
        if budget is not None and budget < 1:
            raise TuneError("budget must be >= 1 (the reference always runs)")
        self.source = source
        self.env = dict(env)
        self.launches = launches
        self.base = base
        self.budget = budget
        self.session = session or default_session()
        if ledger is not None and not isinstance(ledger, TuneLedger):
            ledger = TuneLedger(ledger)
        self.ledger = ledger
        self.kernel_name = kernel_name
        self.filename = filename
        self.task = task_key(source, base, env=self.env, launches=launches)

        m = self.session.metrics
        self._trials = m.counter("tune.trials", "trial points scored")
        self._hits = m.counter("tune.ledger.hits", "trials replayed from the ledger")
        self._misses = m.counter("tune.ledger.misses", "trials compiled and timed")
        self._pruned = m.counter("tune.pruned", "points merged away before compile")
        self._batches = m.counter("tune.batches", "evaluate() batches")
        self._trial_ms = m.histogram("tune.trial_ms", help="per-trial wall time")
        self._best_gauge = m.gauge("tune.best_model_ms", "best modeled time so far")

        self.scored: dict[str, TrialResult] = {}
        self.trials: list[TrialResult] = []
        self._started = 0
        self.ledger_hits = 0
        self.ledger_misses = 0

    # -- search-space plumbing --------------------------------------------

    def _build_space(self, space: KnobSpace | None):
        self.space = space if space is not None else default_space(self.source)
        self.uses_small, self.uses_dim = source_uses_clauses(self.source)
        self.base_arch = arch_key(self.base.arch)
        # The register-cap and candidate-budget collapses are
        # arch-dependent: compute them per arch axis value (None = base).
        self.max_register_limits: dict = {}
        self.candidate_ceilings: dict = {}
        for key in self.space.archs:
            arch_base = self.base if key is None else self.base.derive(arch=key)
            self.max_register_limits[key] = (
                arch_base.arch.max_registers_per_thread
            )
            self.candidate_ceilings[key] = safara_candidate_ceiling(
                self.source, arch_base, filename=self.filename
            )
        self.ceiling = self.candidate_ceilings.get(None)
        points = self.space.points()
        self.points, self.mapping, self.pruned = prune_points(
            points,
            uses_small=self.uses_small,
            uses_dim=self.uses_dim,
            max_register_limit=self.base.arch.max_registers_per_thread,
            candidate_ceiling=self.ceiling,
            base_arch=self.base_arch,
            max_register_limits=self.max_register_limits,
            candidate_ceilings=self.candidate_ceilings,
        )
        self._pruned.inc(self.pruned)
        self.reference = self.canonical(self.space.reference_point())

    def canonical(self, point: TrialPoint) -> TrialPoint:
        return canonicalize(
            point,
            uses_small=self.uses_small,
            uses_dim=self.uses_dim,
            max_register_limit=self.base.arch.max_registers_per_thread,
            candidate_ceiling=self.ceiling,
            base_arch=self.base_arch,
            max_register_limits=self.max_register_limits,
            candidate_ceilings=self.candidate_ceilings,
        )

    def arch_of(self, point: TrialPoint) -> str:
        """The canonical arch key a point compiles for."""
        return point.arch if point.arch is not None else self.base_arch

    def prior(self, point: TrialPoint) -> float:
        """Analytic promise score (lower = try earlier) — ordering only,
        never filtering, so a bad prior costs time, not correctness.

        Balances the paper's two forces: a lower register cap buys
        occupancy (scored via :func:`compute_occupancy` at the cap) but
        risks spills below ~40 registers; SAFARA, the clauses, and an
        uncapped candidate budget save loads.
        """
        arch = (
            self.base.arch if point.arch is None else get_arch(point.arch)
        )
        cap = point.register_limit or arch.max_registers_per_thread
        occ = compute_occupancy(cap, 256, arch).occupancy
        score = -occ
        if cap < 40:
            score += 0.3  # spill risk overrides the occupancy win
        if point.safara:
            score -= 0.4
            if point.safara_max_candidates is not None:
                score += 0.05
        if point.honor_small:
            score -= 0.2
        if point.honor_dim:
            score -= 0.2
        score += 0.1 * (point.unroll_factor - 1)
        return score

    def remaining(self) -> float:
        if self.budget is None:
            return float("inf")
        return self.budget - self._started

    def best(self) -> TrialResult:
        """Best trial so far; exact ties go to the reference point (no
        config churn without a measured win), then to key order."""
        ref = self.reference.key()
        return min(
            self.trials,
            key=lambda t: (t.model_ms, t.point.key() != ref, t.point.key()),
        )

    # -- evaluation --------------------------------------------------------

    def evaluate(self, points: list[TrialPoint]) -> list[TrialResult]:
        """Score a batch: ledger replay, then batched compile + timing
        model for the misses.  Dedups against already-scored keys and
        stops admitting points once the budget is spent."""
        todo: list[TrialPoint] = []
        for p in points:
            if p.key() in self.scored:
                continue
            if self.remaining() <= 0:
                break
            self._started += 1
            todo.append(p)
        if not todo:
            return []
        misses: list[TrialPoint] = []
        for p in todo:
            entry = self.ledger.get(self.task, p.key()) if self.ledger else None
            if entry is not None and self._replay(p, entry):
                continue
            misses.append(p)
        if misses:
            jobs = [
                CompileJob(
                    source=self.source,
                    config=p.apply(self.base),
                    kernel_name=self.kernel_name,
                    filename=self.filename,
                    env=self.env,
                )
                for p in misses
            ]
            programs = self.session.compile_many(jobs)
            for p, program in zip(misses, programs):
                self._score(p, program)
            if self.ledger is not None:
                self.ledger.flush()
        self._batches.inc()
        self._best_gauge.set(self.best().model_ms)
        return [self.scored[p.key()] for p in todo]

    def _replay(self, point: TrialPoint, entry: dict) -> bool:
        """Admit a ledger entry as a trial; False if it is malformed."""
        try:
            result = TrialResult(
                point=point,
                config_name=str(entry["config"]),
                model_ms=float(entry["model_ms"]),
                max_registers=int(entry["max_registers"]),
                min_occupancy=float(entry["min_occupancy"]),
                source="ledger",
            )
        except (KeyError, TypeError, ValueError):
            return False
        with span(
            "tune.trial",
            point=point.key(),
            config=result.config_name,
            cached=True,
        ) as sp:
            sp.set(model_ms=result.model_ms, registers=result.max_registers)
        self._record(result)
        self.ledger_hits += 1
        self._hits.inc()
        return True

    def _score(self, point: TrialPoint, program) -> None:
        t0 = time.perf_counter()
        with span(
            "tune.trial", point=point.key(), config=program.config.name
        ) as sp:
            timing = self.session.time_program(
                program, self.env, launches=self.launches
            )
            result = TrialResult(
                point=point,
                config_name=program.config.name,
                model_ms=timing.total_ms,
                max_registers=program.max_registers,
                min_occupancy=min(
                    (kt.occupancy.occupancy for kt in timing.kernels),
                    default=0.0,
                ),
                trial_ms=(time.perf_counter() - t0) * 1000.0,
            )
            sp.set(model_ms=result.model_ms, registers=result.max_registers)
        self._record(result)
        self.ledger_misses += 1
        self._misses.inc()
        self._trial_ms.observe(result.trial_ms)
        if self.ledger is not None:
            self.ledger.record(
                self.task,
                point.key(),
                {
                    "config": result.config_name,
                    "model_ms": result.model_ms,
                    "max_registers": result.max_registers,
                    "min_occupancy": result.min_occupancy,
                },
            )

    def _record(self, result: TrialResult) -> None:
        self.scored[result.point.key()] = result
        self.trials.append(result)
        self._trials.inc()

    # -- the run -----------------------------------------------------------

    def run(
        self, strategy: "str | Strategy" = "beam", space: KnobSpace | None = None
    ) -> TuneResult:
        strat = make_strategy(strategy)
        with span("tune", strategy=strat.name, task=self.task) as sp:
            self._build_space(space)
            sp.set(
                space=self.space.size,
                unique=len(self.points),
                pruned=self.pruned,
            )
            # The reference scores first: the best can never be worse
            # than the default configuration.
            reference_results = self.evaluate([self.reference])
            if not reference_results:
                raise TuneError("budget exhausted before the reference point")
            reference = reference_results[0]
            strat.run(
                SearchContext(
                    space=self.space,
                    points=self.points,
                    reference=self.reference,
                    evaluate=self.evaluate,
                    canonical=self.canonical,
                    prior=self.prior,
                    remaining=self.remaining,
                    best=self.best,
                    scored=self.scored,
                )
            )
            best = self.best()
            sp.set(trials=len(self.trials), best_ms=best.model_ms)
            per_arch_best: dict[str, TrialResult] = {}
            for t in self.trials:
                key = self.arch_of(t.point)
                cur = per_arch_best.get(key)
                if cur is None or (t.model_ms, t.point.key()) < (
                    cur.model_ms, cur.point.key()
                ):
                    per_arch_best[key] = t
        return TuneResult(
            strategy=strat.name,
            budget=self.budget,
            task_key=self.task,
            space_size=self.space.size,
            unique_points=len(self.points),
            pruned=self.pruned,
            reference=reference,
            best=best,
            best_config=best.point.apply(self.base),
            trials=list(self.trials),
            ledger_path=str(self.ledger.path) if self.ledger else None,
            ledger_hits=self.ledger_hits,
            ledger_misses=self.ledger_misses,
            per_arch_best=per_arch_best,
        )


def tune(
    source: str,
    *,
    env: dict[str, int],
    launches: "dict | list | int" = 1,
    base=BASE,
    strategy: "str | Strategy" = "beam",
    budget: int | None = None,
    space: KnobSpace | None = None,
    session: CompilerSession | None = None,
    ledger: "TuneLedger | str | os.PathLike | None" = None,
    kernel_name: str | None = None,
    filename: str = "<string>",
    archs: "list | tuple | None" = None,
) -> TuneResult:
    """Autotune one kernel source: search the optimization-config space
    for the point with the best modeled runtime at ``env``.

    The returned :class:`TuneResult` carries the winning
    :class:`~repro.compiler.options.CompilerConfig` (``best_config``),
    the reference score it beat, and every trial; pass ``ledger=`` a path
    to make re-tunes resumable (a warm re-tune replays every score and
    performs zero backend compiles).

    ``archs`` widens the search to a fleet: each name is resolved in the
    arch registry (unknown names raise
    :class:`~repro.errors.ConfigError`) and becomes a value of the
    ``arch`` knob axis; ``TuneResult.per_arch_best`` then reports the
    winner per device.  Mutually exclusive with an explicit ``space``
    that already sets its own ``archs``.
    """
    if archs:
        from dataclasses import replace as _replace

        base_key = arch_key(base.arch)
        keys = []
        for name in archs:
            key = arch_key(name)
            keys.append(None if key == base_key else key)
        axis = tuple(dict.fromkeys(keys))
        space = _replace(space or default_space(source), archs=axis)
    tuner = Tuner(
        source,
        env=env,
        launches=launches,
        base=base,
        budget=budget,
        session=session,
        ledger=ledger,
        kernel_name=kernel_name,
        filename=filename,
    )
    return tuner.run(strategy, space=space)
