"""Shared fixtures for analysis tests: small MiniACC programs lowered to IR."""

import pytest

from repro.ir import build_module
from repro.lang import parse_program


@pytest.fixture
def lower():
    """Parse + lower a MiniACC source string; returns the first kernel IR."""

    def _lower(src, name=None):
        mod = build_module(parse_program(src))
        return mod.functions[0] if name is None else mod.function(name)

    return _lower


@pytest.fixture
def fig5(lower):
    """The paper's Figure 5 running example."""
    return lower(
        """
        kernel fig5(double a[isz2][jsz2], const double b[jsz2][isz2],
                    double c[jsz2], double d[jsz2],
                    int ISIZE, int JSIZE, int isz2, int jsz2) {
          #pragma acc kernels loop gang vector(64)
          for (j = 1; j <= JSIZE; j++) {
            c[j] = b[j][0] + b[j][1];
            d[j] = c[j] * b[j][0];
            #pragma acc loop seq
            for (i = 1; i <= ISIZE; i++) {
              a[i][j] += a[i-1][j] + b[j][i-1] + a[i+1][j] + b[j][i+1];
            }
          }
        }
        """
    )


@pytest.fixture
def fig3(lower):
    """The paper's Figure 3: independent iterations, b[i] and b[i+1]."""
    return lower(
        """
        kernel fig3(double a[sz], const double b[sz], int SIZE, int sz) {
          #pragma acc kernels loop gang vector(128)
          for (i = 1; i <= SIZE; i++) {
            a[i] = (b[i] + b[i+1]) / 2;
          }
        }
        """
    )
