"""Unit tests for coalescing classification (paper Section III-A.2)."""

from repro.analysis import AccessPattern, analyze_loops, classify_access
from repro.ir import Assign, array_refs, walk_stmts


def refs_in(fn):
    region = fn.regions()[0]
    out = {}
    for stmt in walk_stmts(region.body):
        if isinstance(stmt, Assign):
            for ref in array_refs(stmt.value):
                out.setdefault(ref.sym.name, []).append(ref)
            if hasattr(stmt.target, "indices"):
                out.setdefault(stmt.target.sym.name, []).append(stmt.target)
    return out


class TestFigure5Classification:
    """The paper's key example: a[i][j] coalesced in j (vector var),
    b[j][i] uncoalesced."""

    def test_a_coalesced(self, fig5):
        info = analyze_loops(fig5.regions()[0])
        refs = refs_in(fig5)
        for ref in refs["a"]:
            assert classify_access(ref, info.vector_var).pattern is AccessPattern.COALESCED

    def test_b_uncoalesced_in_inner_loop(self, fig5):
        info = analyze_loops(fig5.regions()[0])
        refs = refs_in(fig5)
        patterns = {
            classify_access(r, info.vector_var).pattern for r in refs["b"]
        }
        assert AccessPattern.UNCOALESCED in patterns


class TestPatterns:
    def test_unit_stride_coalesced(self, lower):
        fn = lower(
            """
            kernel k(double a[n], const double b[n], int n) {
              #pragma acc kernels loop gang vector(128)
              for (i = 0; i < n; i++) { a[i] = b[i]; }
            }
            """
        )
        info = analyze_loops(fn.regions()[0])
        for ref in refs_in(fn)["b"]:
            acc = classify_access(ref, info.vector_var)
            assert acc.pattern is AccessPattern.COALESCED
            assert acc.stride_elems == 1

    def test_constant_offset_still_coalesced(self, lower):
        fn = lower(
            """
            kernel k(double a[n], const double b[n], int n) {
              #pragma acc kernels loop gang vector(128)
              for (i = 1; i < n; i++) { a[i] = b[i-1]; }
            }
            """
        )
        info = analyze_loops(fn.regions()[0])
        (ref,) = refs_in(fn)["b"]
        assert classify_access(ref, info.vector_var).pattern is AccessPattern.COALESCED

    def test_stride_two_uncoalesced(self, lower):
        fn = lower(
            """
            kernel k(double a[n], const double b[n2], int n, int n2) {
              #pragma acc kernels loop gang vector(128)
              for (i = 0; i < n; i++) { a[i] = b[2*i]; }
            }
            """
        )
        info = analyze_loops(fn.regions()[0])
        (ref,) = refs_in(fn)["b"]
        acc = classify_access(ref, info.vector_var)
        assert acc.pattern is AccessPattern.UNCOALESCED
        assert acc.stride_elems == 2

    def test_row_access_uncoalesced_with_static_stride(self, lower):
        fn = lower(
            """
            kernel k(double a[128][64], const double b[128][64], int n) {
              #pragma acc kernels loop gang vector(128)
              for (i = 0; i < n; i++) {
                #pragma acc loop seq
                for (j = 0; j < 64; j++) {
                  a[i][j] = b[i][j];
                }
              }
            }
            """
        )
        info = analyze_loops(fn.regions()[0])
        assert info.vector_var.name == "i"
        (ref,) = refs_in(fn)["b"]
        acc = classify_access(ref, info.vector_var)
        assert acc.pattern is AccessPattern.UNCOALESCED
        assert acc.stride_elems == 64

    def test_row_access_symbolic_stride_unknown_extent(self, lower):
        fn = lower(
            """
            kernel k(double a[n][m], const double b[n][m], int n, int m) {
              #pragma acc kernels loop gang vector(128)
              for (i = 0; i < n; i++) {
                #pragma acc loop seq
                for (j = 0; j < m; j++) {
                  a[i][j] = b[i][j];
                }
              }
            }
            """
        )
        info = analyze_loops(fn.regions()[0])
        (ref,) = refs_in(fn)["b"]
        acc = classify_access(ref, info.vector_var)
        assert acc.pattern is AccessPattern.UNCOALESCED
        assert acc.stride_elems is None

    def test_uniform_access(self, lower):
        fn = lower(
            """
            kernel k(double a[n], const double b[n], int n, int j) {
              #pragma acc kernels loop gang vector(128)
              for (i = 0; i < n; i++) { a[i] = b[j]; }
            }
            """
        )
        info = analyze_loops(fn.regions()[0])
        (ref,) = refs_in(fn)["b"]
        assert classify_access(ref, info.vector_var).pattern is AccessPattern.UNIFORM

    def test_non_affine_unknown(self, lower):
        fn = lower(
            """
            kernel k(double a[n], const double b[n], int n) {
              #pragma acc kernels loop gang vector(128)
              for (i = 0; i < n; i++) { a[i] = b[i % 4]; }
            }
            """
        )
        info = analyze_loops(fn.regions()[0])
        (ref,) = refs_in(fn)["b"]
        assert classify_access(ref, info.vector_var).pattern is AccessPattern.UNKNOWN

    def test_no_vector_var_uniform(self, lower):
        fn = lower(
            """
            kernel k(double a[n], const double b[n], int n) {
              #pragma acc kernels
              {
                #pragma acc loop seq
                for (i = 0; i < n; i++) { a[i] = b[i]; }
              }
            }
            """
        )
        (ref,) = refs_in(fn)["b"]
        assert classify_access(ref, None).pattern is AccessPattern.UNIFORM

    def test_pointer_linear_index(self, lower):
        fn = lower(
            """
            kernel k(double * restrict a, double * restrict b, int n, int m) {
              #pragma acc kernels loop gang vector(128)
              for (i = 0; i < n; i++) { a[i] = b[i + 3]; }
            }
            """
        )
        info = analyze_loops(fn.regions()[0])
        (ref,) = refs_in(fn)["b"]
        assert classify_access(ref, info.vector_var).pattern is AccessPattern.COALESCED
