"""Unit tests for dependence analysis and parallelisability checks."""

from repro.analysis import (
    DepKind,
    analyze_loops,
    dependences,
    is_parallelizable,
    loop_carried_dependences,
)


def only_loop(fn):
    info = analyze_loops(fn.regions()[0]) if fn.regions() else None
    if info is not None:
        return info.loops[0]
    return fn.body[0]


class TestDependenceKinds:
    def test_flow_dependence(self, lower):
        fn = lower(
            """
            kernel k(double a[n], int n) {
              #pragma acc loop seq
              for (i = 1; i < n; i++) {
                a[i] = a[i-1] + 1.0;
              }
            }
            """
        )
        deps = dependences(fn.body[0])
        kinds = {d.kind for d in deps}
        assert DepKind.FLOW in kinds
        flow = next(d for d in deps if d.kind is DepKind.FLOW)
        assert flow.distance == 1
        assert flow.is_loop_carried

    def test_anti_dependence(self, lower):
        fn = lower(
            """
            kernel k(double a[n], int n) {
              #pragma acc loop seq
              for (i = 0; i < n - 1; i++) {
                a[i] = a[i+1] + 1.0;
              }
            }
            """
        )
        deps = dependences(fn.body[0])
        assert any(d.kind is DepKind.ANTI and d.is_loop_carried for d in deps)

    def test_output_dependence(self, lower):
        fn = lower(
            """
            kernel k(double a[n], int n, int j) {
              #pragma acc loop seq
              for (i = 0; i < n; i++) {
                a[j] = 1.0;
                a[j] = 2.0;
              }
            }
            """
        )
        deps = dependences(fn.body[0])
        assert any(d.kind is DepKind.OUTPUT for d in deps)

    def test_input_dependences_excluded_by_default(self, lower):
        fn = lower(
            """
            kernel k(double a[n], const double b[n], int n) {
              #pragma acc loop seq
              for (i = 1; i < n; i++) {
                a[i] = b[i] + b[i-1];
              }
            }
            """
        )
        deps = dependences(fn.body[0])
        assert not any(d.kind is DepKind.INPUT for d in deps)
        deps = dependences(fn.body[0], include_input=True)
        assert any(d.kind is DepKind.INPUT for d in deps)


class TestParallelizability:
    def test_independent_loop(self, fig3):
        loop = analyze_loops(fig3.regions()[0]).loops[0]
        assert is_parallelizable(loop)

    def test_recurrence_not_parallelizable(self, lower):
        fn = lower(
            """
            kernel k(double a[n], int n) {
              #pragma acc loop seq
              for (i = 1; i < n; i++) {
                a[i] = a[i-1] * 0.5;
              }
            }
            """
        )
        assert not is_parallelizable(fn.body[0])

    def test_figure5_inner_loop_sequential(self, fig5):
        info = analyze_loops(fig5.regions()[0])
        iloop = next(l for l in info.loops if l.var.name == "i")
        assert not is_parallelizable(iloop)

    def test_figure5_outer_loop_parallelizable(self, fig5):
        info = analyze_loops(fig5.regions()[0])
        jloop = next(l for l in info.loops if l.var.name == "j")
        # All j-dependences are distance 0 in j.
        assert is_parallelizable(jloop)

    def test_disjoint_constant_subscripts_independent(self, lower):
        fn = lower(
            """
            kernel k(double a[n][4], int n) {
              #pragma acc loop seq
              for (i = 0; i < n; i++) {
                a[i][0] = 1.0;
                a[i][1] = a[i][2] + 1.0;
              }
            }
            """
        )
        assert is_parallelizable(fn.body[0])

    def test_unknown_distance_conservative(self, lower):
        fn = lower(
            """
            kernel k(double a[n], const int idx[n], int n) {
              #pragma acc loop seq
              for (i = 0; i < n; i++) {
                a[idx[i]] = 1.0;
                a[i] = a[i] + 2.0;
              }
            }
            """
        )
        carried = loop_carried_dependences(fn.body[0])
        assert any(d.distance is None for d in carried)
        assert not is_parallelizable(fn.body[0])
