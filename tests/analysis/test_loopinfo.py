"""Tests for loop-nest structure analysis and warp-divergence detection."""

from repro.analysis import analyze_loops
from repro.ir import build_module
from repro.lang import parse_program


def region_info(src):
    fn = build_module(parse_program(src)).functions[0]
    return analyze_loops(fn.regions()[0])


NEST_SRC = """
kernel k(double a[n][m], int n, int m) {
  #pragma acc kernels loop gang
  for (j = 0; j < m; j++) {
    #pragma acc loop gang vector(64)
    for (i = 0; i < n; i++) {
      #pragma acc loop seq
      for (t = 0; t < 4; t++) {
        a[i][j] = a[i][j] + t;
      }
    }
  }
}
"""


class TestStructure:
    def test_loop_enumeration(self):
        info = region_info(NEST_SRC)
        assert [l.var.name for l in info.loops] == ["j", "i", "t"]
        assert [info.depths[l.loop_id] for l in info.loops] == [0, 1, 2]

    def test_parents(self):
        info = region_info(NEST_SRC)
        j, i, t = info.loops
        assert info.parents[j.loop_id] is None
        assert info.parents[i.loop_id] is j
        assert info.parents[t.loop_id] is i
        assert info.enclosing(t) == [j, i]

    def test_parallel_vs_seq(self):
        info = region_info(NEST_SRC)
        assert [l.var.name for l in info.parallel_loops] == ["j", "i"]
        assert [l.var.name for l in info.seq_loops] == ["t"]

    def test_vector_loop_is_deepest_with_vector_clause(self):
        info = region_info(NEST_SRC)
        assert info.vector_var.name == "i"

    def test_inner_loops(self):
        info = region_info(NEST_SRC)
        j = info.loops[0]
        assert {l.var.name for l in info.inner_loops(j)} == {"i", "t"}

    def test_loop_of_var(self):
        info = region_info(NEST_SRC)
        t = info.loops[2]
        assert info.loop_of_var(t.var) is t


class TestDivergenceAnalysis:
    def test_uniform_seq_loop_not_divergent(self):
        info = region_info(NEST_SRC)
        names = {s.name for s in info.divergent_symbols()}
        assert "t" not in names

    def test_csr_row_loop_divergent(self):
        src = """
        kernel k(const double va[nz], const int rowstr[n1], double q[n], int n, int n1, int nz) {
          #pragma acc kernels loop gang vector(64)
          for (j = 0; j < n; j++) {
            double sum = 0.0;
            int lo = rowstr[j];
            int hi = rowstr[j+1];
            #pragma acc loop seq
            for (k = lo; k < hi; k++) {
              sum += va[k];
            }
            q[j] = sum;
          }
        }
        """
        info = region_info(src)
        names = {s.name for s in info.divergent_symbols()}
        # lo/hi come from loads; k's bounds are lo/hi.
        assert {"lo", "hi", "k"} <= names

    def test_scalar_derived_from_thread_id_divergent(self):
        src = """
        kernel k(double a[n], int n, int m) {
          #pragma acc kernels loop gang vector(64)
          for (i = 0; i < n; i++) {
            int base = i * m;
            #pragma acc loop seq
            for (k = base; k < base + 4; k++) {
              a[i] = a[i] + k;
            }
          }
        }
        """
        info = region_info(src)
        names = {s.name for s in info.divergent_symbols()}
        assert "base" in names
        assert "k" in names

    def test_divergent_subscript_not_uniform(self):
        from repro.analysis import AccessPattern, classify_access
        from repro.ir import Assign, array_refs, walk_stmts

        src = """
        kernel k(const double va[nz], const int rowstr[n1], double q[n], int n, int n1, int nz) {
          #pragma acc kernels loop gang vector(64)
          for (j = 0; j < n; j++) {
            double sum = 0.0;
            int lo = rowstr[j];
            #pragma acc loop seq
            for (k = lo; k < lo + 8; k++) {
              sum += va[k];
            }
            q[j] = sum;
          }
        }
        """
        fn = build_module(parse_program(src)).functions[0]
        info = analyze_loops(fn.regions()[0])
        divergent = frozenset(info.divergent_symbols())
        va_ref = next(
            r
            for s in walk_stmts(fn.regions()[0].body)
            if isinstance(s, Assign)
            for r in array_refs(s.value)
            if r.sym.name == "va"
        )
        acc = classify_access(va_ref, info.vector_var, divergent)
        assert acc.pattern is AccessPattern.UNKNOWN  # scattered, not uniform

    def test_no_false_positive_for_plain_locals(self):
        src = """
        kernel k(double a[n], int n) {
          #pragma acc kernels loop gang vector(64)
          for (i = 0; i < n; i++) {
            #pragma acc loop seq
            for (k = 2; k < 10; k++) {
              a[i] = a[i] + k;
            }
          }
        }
        """
        info = region_info(src)
        assert {s.name for s in info.divergent_symbols()} == set()
