"""Unit tests for memory-space classification and the SAFARA cost model."""

import pytest

from repro.analysis import (
    AccessInfo,
    AccessPattern,
    LatencyModel,
    MemSpace,
    analyze_loops,
    classify_all,
    classify_memspaces,
    find_reuse_groups,
    price_candidates,
)
from repro.ir import Assign, array_refs, walk_stmts


class TestMemspace:
    def test_const_unwritten_array_is_readonly(self, fig5):
        region = fig5.regions()[0]
        spaces = classify_memspaces(region)
        by_name = {s.name: v for s, v in spaces.items()}
        assert by_name["b"] is MemSpace.READONLY
        assert by_name["a"] is MemSpace.GLOBAL

    def test_written_array_is_global_even_if_const_free(self, fig5):
        region = fig5.regions()[0]
        by_name = {s.name: v for s, v in classify_memspaces(region).items()}
        assert by_name["c"] is MemSpace.GLOBAL
        assert by_name["d"] is MemSpace.GLOBAL

    def test_no_readonly_cache_pre_kepler(self, fig5):
        region = fig5.regions()[0]
        spaces = classify_memspaces(region, has_readonly_cache=False)
        assert all(v is MemSpace.GLOBAL for v in spaces.values())

    def test_unqualified_read_only_array_stays_global(self, lower):
        fn = lower(
            """
            kernel k(double a[n], double b[n], int n) {
              #pragma acc kernels loop gang vector(64)
              for (i = 0; i < n; i++) { a[i] = b[i]; }
            }
            """
        )
        by_name = {
            s.name: v for s, v in classify_memspaces(fn.regions()[0]).items()
        }
        # b is never written but not declared const/restrict: the compiler
        # cannot promise the read-only cache (no __ldg), so global.
        assert by_name["b"] is MemSpace.GLOBAL

    def test_restrict_pointer_read_only(self, lower):
        fn = lower(
            """
            kernel k(double * restrict a, double * restrict b, int n) {
              #pragma acc kernels loop gang vector(64)
              for (i = 0; i < n; i++) { a[i] = b[i]; }
            }
            """
        )
        by_name = {
            s.name: v for s, v in classify_memspaces(fn.regions()[0]).items()
        }
        assert by_name["b"] is MemSpace.READONLY


class TestLatencyModel:
    def test_readonly_cheaper_than_global(self):
        lm = LatencyModel()
        coal = AccessInfo(AccessPattern.COALESCED, 1)
        assert lm.access_latency(MemSpace.READONLY, coal) < lm.access_latency(
            MemSpace.GLOBAL, coal
        )

    def test_uncoalesced_more_expensive(self):
        lm = LatencyModel()
        coal = AccessInfo(AccessPattern.COALESCED, 1)
        uncoal = AccessInfo(AccessPattern.UNCOALESCED, None)
        assert lm.access_latency(MemSpace.GLOBAL, uncoal) > lm.access_latency(
            MemSpace.GLOBAL, coal
        )

    def test_uncoalesced_factor_caps_stride(self):
        lm = LatencyModel()
        small = AccessInfo(AccessPattern.UNCOALESCED, 2)
        huge = AccessInfo(AccessPattern.UNCOALESCED, 100000)
        assert lm.access_latency(MemSpace.GLOBAL, small) < lm.access_latency(
            MemSpace.GLOBAL, huge
        )
        assert (
            lm.access_latency(MemSpace.GLOBAL, huge)
            == lm.global_mem * lm.uncoalesced_factor
        )

    def test_shared_is_cheap(self):
        lm = LatencyModel()
        coal = AccessInfo(AccessPattern.COALESCED, 1)
        assert lm.access_latency(MemSpace.SHARED, coal) < lm.access_latency(
            MemSpace.READONLY, coal
        )


class TestCostRanking:
    """Section III-A.2: replacing uncoalesced b beats more-referenced,
    coalesced a."""

    def _candidates(self, fig5):
        region = fig5.regions()[0]
        info = analyze_loops(region)
        iloop = next(l for l in info.loops if l.var.name == "i")
        refs = []
        for stmt in walk_stmts(region.body):
            if isinstance(stmt, Assign):
                refs += array_refs(stmt.value)
                if hasattr(stmt.target, "indices"):
                    refs.append(stmt.target)
        accesses = classify_all(refs, info.vector_var)
        spaces = classify_memspaces(region)
        return price_candidates(find_reuse_groups(iloop), spaces, accesses)

    def test_b_ranked_above_a(self, fig5):
        cands = self._candidates(fig5)
        names = [c.group.array.name for c in cands]
        assert names.index("b") < names.index("a")

    def test_cost_formula_is_count_times_latency(self, fig5):
        lm = LatencyModel()
        for cand in self._candidates(fig5):
            expected = cand.group.ref_count * lm.access_latency(cand.space, cand.access)
            assert cand.cost == pytest.approx(expected)

    def test_register_requirements(self, fig5):
        cands = self._candidates(fig5)
        by_name = {c.group.array.name: c for c in cands}
        # b: span 2 -> 3 temporaries of double = 6 x 32-bit registers.
        assert by_name["b"].registers_needed == 6

    def test_count_only_ranking_differs(self, fig5):
        """With the Carr-Kennedy metric (use count only), a would win —
        demonstrating why the GPU-aware cost model matters."""
        cands = self._candidates(fig5)
        by_count = sorted(cands, key=lambda c: -c.group.ref_count)
        assert by_count[0].group.array.name == "a"
        assert cands[0].group.array.name == "b"
