"""Unit tests for reuse-group detection (paper Section III)."""

from repro.analysis import GroupKind, analyze_loops, find_reuse_groups, iteration_distance
from repro.analysis.reuse import collect_occurrences


def groups_by_array(loop):
    return {g.array.name: g for g in find_reuse_groups(loop)}


class TestFigure3:
    """b[i] / b[i+1] inside a *parallel* loop — inter-iteration reuse that
    SAFARA must refuse to exploit (it would sequentialise the loop)."""

    def test_group_detected(self, fig3):
        region = fig3.regions()[0]
        info = analyze_loops(region)
        (loop,) = info.loops
        g = groups_by_array(loop)["b"]
        assert g.kind is GroupKind.INTER
        assert g.span == 1
        assert sorted(g.lags) == [0, 1]

    def test_generator_is_leading_reference(self, fig3):
        region = fig3.regions()[0]
        (loop,) = analyze_loops(region).loops
        g = groups_by_array(loop)["b"]
        # Generator loads b[i+1] — the newest location.
        gen_forms = g.generator.ref.indices
        assert "1" in str(gen_forms)

    def test_a_not_grouped(self, fig3):
        region = fig3.regions()[0]
        (loop,) = analyze_loops(region).loops
        assert "a" not in groups_by_array(loop)  # single ref, not invariant


class TestFigure5:
    def test_inner_loop_groups(self, fig5):
        region = fig5.regions()[0]
        info = analyze_loops(region)
        iloop = next(l for l in info.loops if l.var.name == "i")
        gs = groups_by_array(iloop)
        assert gs["a"].kind is GroupKind.INTER
        assert gs["a"].span == 2
        assert gs["a"].has_write
        assert gs["b"].kind is GroupKind.INTER
        assert gs["b"].span == 2
        assert not gs["b"].has_write

    def test_b_needs_three_temporaries(self, fig5):
        # Matches Figure 6: b0, b1, b2.
        region = fig5.regions()[0]
        info = analyze_loops(region)
        iloop = next(l for l in info.loops if l.var.name == "i")
        assert groups_by_array(iloop)["b"].temporaries_needed() == 3

    def test_outer_loop_intra_groups(self, fig5):
        region = fig5.regions()[0]
        info = analyze_loops(region)
        jloop = next(l for l in info.loops if l.var.name == "j")
        gs = groups_by_array(jloop)
        # b[j][0] appears twice in one j iteration; c[j] written then read.
        assert gs["b"].kind is GroupKind.INTRA
        assert gs["c"].kind is GroupKind.INTRA
        assert gs["c"].has_write

    def test_nested_refs_not_collected_at_outer_level(self, fig5):
        region = fig5.regions()[0]
        info = analyze_loops(region)
        jloop = next(l for l in info.loops if l.var.name == "j")
        names = {o.ref.sym.name for o in collect_occurrences(jloop)}
        assert "a" not in names  # a refs live in the inner loop only


class TestInvariantGroups:
    def test_loop_invariant_reference(self, lower):
        fn = lower(
            """
            kernel k(double a[n], const double b[n], int n) {
              #pragma acc kernels loop gang vector(64)
              for (i = 0; i < n; i++) {
                #pragma acc loop seq
                for (k = 1; k < n; k++) {
                  a[k] = a[k] + b[0] * 2.0 + b[0];
                }
              }
            }
            """
        )
        info = analyze_loops(fn.regions()[0])
        kloop = next(l for l in info.loops if l.var.name == "k")
        g = groups_by_array(kloop)["b"]
        assert g.kind is GroupKind.INVARIANT
        assert g.ref_count == 2
        assert g.loads_saved() == 2  # both per-iteration loads hoisted

    def test_singleton_invariant_kept(self, lower):
        fn = lower(
            """
            kernel k(double a[n], const double b[n], int n) {
              #pragma acc kernels loop gang vector(64)
              for (i = 0; i < n; i++) {
                #pragma acc loop seq
                for (k = 1; k < n; k++) {
                  a[k] = a[k] + b[0];
                }
              }
            }
            """
        )
        info = analyze_loops(fn.regions()[0])
        kloop = next(l for l in info.loops if l.var.name == "k")
        assert groups_by_array(kloop)["b"].kind is GroupKind.INVARIANT

    def test_invariant_wrt_outer_var_not_inner(self, fig5):
        # b[j][0] is invariant wrt i? No — it IS invariant wrt i, but it
        # appears at the j level, not inside the i loop, so the i-loop
        # analysis does not see it.
        region = fig5.regions()[0]
        info = analyze_loops(region)
        iloop = next(l for l in info.loops if l.var.name == "i")
        for g in find_reuse_groups(iloop):
            assert g.kind is not GroupKind.INVARIANT


class TestIterationDistance:
    def test_strided_loop_distance(self, lower):
        fn = lower(
            """
            kernel k(double a[n], const double b[n], int n) {
              #pragma acc loop seq
              for (i = 0; i < n; i += 2) {
                a[i] = b[i] + b[i+2];
              }
            }
            """
        )
        loop = fn.body[0]
        gs = groups_by_array(loop)
        assert gs["b"].kind is GroupKind.INTER
        assert gs["b"].span == 1  # distance 2 elements = 1 iteration at step 2

    def test_non_multiple_of_step_not_grouped(self, lower):
        fn = lower(
            """
            kernel k(double a[n], const double b[n], int n) {
              #pragma acc loop seq
              for (i = 0; i < n; i += 2) {
                a[i] = b[i] + b[i+1];
              }
            }
            """
        )
        loop = fn.body[0]
        # b[i] and b[i+1] never touch the same element when stepping by 2.
        assert "b" not in groups_by_array(loop)

    def test_downward_loop_distance(self, lower):
        fn = lower(
            """
            kernel k(double a[n], const double b[n], int n) {
              #pragma acc loop seq
              for (i = n; i >= 1; i--) {
                a[i] = b[i] + b[i-1];
              }
            }
            """
        )
        loop = fn.body[0]
        g = groups_by_array(loop)["b"]
        assert g.kind is GroupKind.INTER
        assert g.span == 1
        # Generator must be the reference touching the newest location for a
        # DOWNWARD loop: b[i-1].
        from repro.ir import format_expr

        assert format_expr(g.generator.ref) == "b[i - 1]"

    def test_inconsistent_multidim_distance_rejected(self, lower):
        fn = lower(
            """
            kernel k(double a[n][n], const double b[n][n], int n) {
              #pragma acc loop seq
              for (i = 1; i < n; i++) {
                a[i][i] = b[i][i] + b[i-1][i-2];
              }
            }
            """
        )
        loop = fn.body[0]
        # distances 1 and 2 in the two dims are inconsistent: no group.
        assert "b" not in groups_by_array(loop)


class TestWriteHandling:
    def test_compound_assign_forms_intra_group(self, lower):
        fn = lower(
            """
            kernel k(double a[n], int n, int j) {
              #pragma acc loop seq
              for (i = 0; i < n; i++) {
                a[j] += 1.0;
              }
            }
            """
        )
        loop = fn.body[0]
        g = groups_by_array(loop)["a"]
        # a[j] is invariant wrt i with read+write.
        assert g.kind is GroupKind.INVARIANT
        assert g.has_write

    def test_write_then_read_same_iteration(self, lower):
        fn = lower(
            """
            kernel k(double a[n], double c[n], int n) {
              #pragma acc loop seq
              for (i = 0; i < n; i++) {
                a[i] = 2.0;
                c[i] = a[i] * 3.0;
              }
            }
            """
        )
        loop = fn.body[0]
        g = groups_by_array(loop)["a"]
        assert g.kind is GroupKind.INTRA
        assert g.loads_saved() == 1  # the read is forwarded from the temp
