"""Unit tests for affine subscript analysis."""

from repro.analysis import AffineForm, affine_of, subscript_distance, subscript_forms
from repro.ir import ArrayRef, BinOp, Cast, I64, IntConst, UnOp, VarRef
from repro.ir.symbols import ArrayInfo, Dim, Symbol, SymbolKind
from repro.ir.types import F64, I32


def sym(name, stype=I32):
    return Symbol(name=name, stype=stype, kind=SymbolKind.LOOPVAR)


def arr(name, ndim=1):
    return Symbol(
        name=name,
        stype=F64,
        kind=SymbolKind.PARAM,
        array=ArrayInfo(elem=F64, dims=tuple(Dim(extent=100) for _ in range(ndim))),
    )


class TestAffineForm:
    def test_constant(self):
        f = AffineForm.constant(5)
        assert f.is_constant and f.const == 5

    def test_variable(self):
        i = sym("i")
        f = AffineForm.variable(i)
        assert f.coefficient(i) == 1
        assert not f.is_constant

    def test_zero_coefficient_variable_is_constant(self):
        i = sym("i")
        assert AffineForm.variable(i, 0).is_constant

    def test_addition_merges_terms(self):
        i = sym("i")
        f = AffineForm.variable(i, 2) + AffineForm.variable(i, 3)
        assert f.coefficient(i) == 5

    def test_subtraction_cancels(self):
        i = sym("i")
        f = AffineForm.variable(i) - AffineForm.variable(i)
        assert f.is_constant and f.const == 0

    def test_scale(self):
        i = sym("i")
        f = (AffineForm.variable(i) + AffineForm.constant(1)).scale(3)
        assert f.coefficient(i) == 3 and f.const == 3

    def test_scale_by_zero(self):
        i = sym("i")
        assert AffineForm.variable(i).scale(0) == AffineForm()

    def test_drop(self):
        i, j = sym("i"), sym("j")
        f = AffineForm.variable(i) + AffineForm.variable(j) + AffineForm.constant(2)
        g = f.drop(i)
        assert g.coefficient(i) == 0 and g.coefficient(j) == 1 and g.const == 2

    def test_equality_is_structural(self):
        i = sym("i")
        a = AffineForm.variable(i) + AffineForm.constant(1)
        b = AffineForm.constant(1) + AffineForm.variable(i)
        assert a == b
        assert hash(a) == hash(b)


class TestAffineOf:
    def test_int_const(self):
        assert affine_of(IntConst(7)) == AffineForm.constant(7)

    def test_var(self):
        i = sym("i")
        assert affine_of(VarRef(i)) == AffineForm.variable(i)

    def test_add_sub(self):
        i = sym("i")
        e = BinOp("-", BinOp("+", VarRef(i), IntConst(1)), IntConst(3))
        f = affine_of(e)
        assert f.coefficient(i) == 1 and f.const == -2

    def test_mul_by_const_either_side(self):
        i = sym("i")
        for e in (BinOp("*", IntConst(4), VarRef(i)), BinOp("*", VarRef(i), IntConst(4))):
            assert affine_of(e).coefficient(i) == 4

    def test_negation(self):
        i = sym("i")
        f = affine_of(UnOp("-", VarRef(i)))
        assert f.coefficient(i) == -1

    def test_linearized_index_symbolic_coefficient(self):
        # i*n with n symbolic: affine in i with a symbolic stride n.
        i, n = sym("i"), sym("n")
        f = affine_of(BinOp("*", VarRef(i), VarRef(n)))
        assert f is not None
        stride = f.linear_coefficient(i)
        assert stride is not None and not stride.is_constant
        assert stride.depends_on(n)

    def test_quadratic_not_affine_in_var(self):
        i = sym("i")
        f = affine_of(BinOp("*", VarRef(i), VarRef(i)))
        assert f is not None  # still a polynomial...
        assert f.linear_coefficient(i) is None  # ...but not affine in i

    def test_hand_linearised_c_index(self):
        # (k*ny + j)*nx + i — the C benchmark pattern.
        k, j, i, ny, nx = (sym(x) for x in "kjiyx")
        e = BinOp(
            "+",
            BinOp("*", BinOp("+", BinOp("*", VarRef(k), VarRef(ny)), VarRef(j)), VarRef(nx)),
            VarRef(i),
        )
        f = affine_of(e)
        assert f is not None
        assert f.linear_coefficient(i).const == 1
        k_stride = f.linear_coefficient(k)
        assert k_stride.depends_on(ny) and k_stride.depends_on(nx)

    def test_division_non_affine(self):
        i = sym("i")
        assert affine_of(BinOp("/", VarRef(i), IntConst(2))) is None

    def test_modulo_non_affine(self):
        i = sym("i")
        assert affine_of(BinOp("%", VarRef(i), IntConst(4))) is None

    def test_integer_cast_transparent(self):
        i = sym("i")
        f = affine_of(Cast(I64, VarRef(i)))
        assert f is not None and f.coefficient(i) == 1

    def test_float_cast_opaque(self):
        i = sym("i")
        assert affine_of(Cast(F64, VarRef(i))) is None


class TestSubscriptDistance:
    def test_unit_distance(self):
        i = sym("i")
        b = arr("b")
        r1 = ArrayRef(b, (VarRef(i),))
        r2 = ArrayRef(b, (BinOp("+", VarRef(i), IntConst(1)),))
        assert subscript_distance(r2, r1) == (1,)
        assert subscript_distance(r1, r2) == (-1,)

    def test_multi_dim(self):
        i, j = sym("i"), sym("j")
        a = arr("a", 2)
        r1 = ArrayRef(a, (VarRef(i), VarRef(j)))
        r2 = ArrayRef(a, (BinOp("-", VarRef(i), IntConst(1)), VarRef(j)))
        assert subscript_distance(r1, r2) == (1, 0)

    def test_different_arrays_none(self):
        i = sym("i")
        r1 = ArrayRef(arr("a"), (VarRef(i),))
        r2 = ArrayRef(arr("b"), (VarRef(i),))
        assert subscript_distance(r1, r2) is None

    def test_different_coefficients_none(self):
        i = sym("i")
        b = arr("b")
        r1 = ArrayRef(b, (VarRef(i),))
        r2 = ArrayRef(b, (BinOp("*", IntConst(2), VarRef(i)),))
        assert subscript_distance(r1, r2) is None

    def test_same_ref_zero_distance(self):
        i = sym("i")
        b = arr("b")
        r = ArrayRef(b, (VarRef(i),))
        assert subscript_distance(r, r) == (0,)

    def test_subscript_forms_non_affine(self):
        i = sym("i")
        b = arr("b")
        r = ArrayRef(b, (BinOp("%", VarRef(i), IntConst(3)),))
        assert subscript_forms(r) is None
