"""Tests for the benchmark argument builder."""

import numpy as np
import pytest

from repro.bench import load_all
from repro.bench.args import build_test_args, copy_args

SPEC_SUITE, NAS_SUITE = load_all()


class TestBuildTestArgs:
    def test_shaped_arrays_match_declared_dims(self):
        spec = SPEC_SUITE.get("355.seismic")
        fn, args = build_test_args(spec)
        env = spec.test_env
        assert args["vx"].shape == (env["nz"], env["ny"], env["nx"])
        assert args["vx"].dtype == np.float64

    def test_pointer_arrays_use_pointer_lens(self):
        spec = SPEC_SUITE.get("303.ostencil")
        fn, args = build_test_args(spec)
        env = spec.test_env
        assert args["a0"].shape == (env["nx"] * env["ny"] * env["nz"],)

    def test_overrides_take_precedence(self):
        spec = SPEC_SUITE.get("354.cg")
        fn, args = build_test_args(spec)
        # rowstr built by the benchmark's own maker: monotone row starts.
        rowstr = args["rowstr"]
        assert (np.diff(rowstr) >= 0).all()

    def test_deterministic_given_seed(self):
        spec = NAS_SUITE.get("MG")
        _, a = build_test_args(spec, seed=5)
        _, b = build_test_args(spec, seed=5)
        np.testing.assert_array_equal(a["u"], b["u"])

    def test_different_seeds_differ(self):
        spec = NAS_SUITE.get("MG")
        _, a = build_test_args(spec, seed=1)
        _, b = build_test_args(spec, seed=2)
        assert not np.array_equal(a["u"], b["u"])

    def test_scalar_args_included(self):
        spec = SPEC_SUITE.get("355.seismic")
        _, args = build_test_args(spec)
        assert args["h"] == 0.5
        assert args["dt"] == 0.01

    def test_private_env_keys_excluded(self):
        spec = SPEC_SUITE.get("354.cg")
        _, args = build_test_args(spec)
        assert "__trips_k" not in args

    def test_copy_args_isolates_arrays(self):
        spec = NAS_SUITE.get("MG")
        _, args = build_test_args(spec)
        clone = copy_args(args)
        clone["u"][0] = 999.0
        assert args["u"][0] != 999.0
