"""Smoke + shape tests for the experiment harness (tables run in full;
figure experiments are exercised through their building blocks to keep the
suite fast — the full figures run from benchmarks/)."""

import pytest

from repro.bench import load_all, run_configs, speedups_over, table1, table2
from repro.bench.runner import run_benchmark
from repro.compiler import BASE, SAFARA_ONLY, SMALL, SMALL_DIM


class TestRunner:
    def test_run_benchmark_returns_timing(self):
        spec, _ = load_all()
        r = run_benchmark(spec.get("352.ep"), BASE)
        assert r.total_ms > 0
        assert r.max_registers > 0

    def test_speedups_over_base(self):
        spec, _ = load_all()
        results = run_configs(spec.get("303.ostencil"), [BASE, SAFARA_ONLY])
        s = speedups_over(BASE.name, results)
        assert s[BASE.name] == 1.0
        assert s[SAFARA_ONLY.name] > 1.0


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return table1()

    def test_seven_rows(self, result):
        assert len(result.rows) == 7

    def test_base_register_range_matches_paper(self, result):
        """Paper Table I base column spans 76..134; ours must land in the
        same regime (within a factor of ~1.5 at each end)."""
        bases = [r["base"] for r in result.rows]
        assert 50 <= min(bases) <= 110
        assert 100 <= max(bases) <= 200

    def test_dim_always_applicable_for_seismic(self, result):
        assert all(r["w dim"] is not None for r in result.rows)

    def test_savings_positive_everywhere(self, result):
        assert all(r["saved"] > 0 for r in result.rows)

    def test_dim_column_matches_paper_regime(self, result):
        dims = [r["w dim"] for r in result.rows]
        assert max(dims) <= 70  # paper: 40..48

    def test_render_contains_paper_columns(self, result):
        text = result.render()
        assert "paper base" in text
        assert "HOT1" in text


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return table2()

    def test_ten_rows(self, result):
        assert len(result.rows) == 10

    def test_na_rows_match_paper(self, result):
        """Rows where the paper prints NA must be NA for us too (dim not
        applicable: <2 same-shape allocatables in the kernel)."""
        ours = {r["kernel"] for r in result.rows if r["w dim"] is None}
        paper = {r["kernel"] for r in result.rows if r["paper w dim"] is None}
        assert ours == paper

    def test_hot8_is_heaviest(self, result):
        by_kernel = {r["kernel"]: r["base"] for r in result.rows}
        assert by_kernel["HOT8"] == max(by_kernel.values())

    def test_small_always_helps_or_neutral(self, result):
        assert all(r["+small"] <= r["base"] for r in result.rows)
