"""Unit tests for metrics and sanity checks over the stored paper data."""

import math

import pytest

from repro.bench.metrics import ShapeCheck, geometric_mean, normalize_times, speedup
from repro.bench import paper_data


class TestSpeedup:
    def test_basic(self):
        assert speedup(10.0, 5.0) == 2.0

    def test_slowdown_below_one(self):
        assert speedup(5.0, 10.0) == 0.5

    def test_zero_time_rejected(self):
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)


class TestGeometricMean:
    def test_equal_values(self):
        assert geometric_mean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestNormalization:
    def test_max_becomes_one(self):
        norm = normalize_times({"a": 10.0, "b": 5.0})
        assert norm["a"] == 1.0
        assert norm["b"] == 0.5

    def test_empty(self):
        assert normalize_times({}) == {}

    def test_paper_formula(self):
        # Norm(c) = ExeTime(c) / max(ExeTime(OpenUH), ExeTime(PGI))
        times = {"OpenUH": 12.0, "PGI": 8.0}
        norm = normalize_times(times)
        assert norm["OpenUH"] == 1.0
        assert norm["PGI"] == pytest.approx(8.0 / 12.0)


class TestShapeCheck:
    def test_direction_speedup(self):
        c = ShapeCheck("x", "cfg", paper_value=1.2, measured_value=1.5)
        assert c.direction_ok

    def test_direction_slowdown(self):
        c = ShapeCheck("x", "cfg", paper_value=0.9, measured_value=0.95)
        assert c.direction_ok

    def test_direction_mismatch(self):
        c = ShapeCheck("x", "cfg", paper_value=0.9, measured_value=1.4)
        assert not c.direction_ok

    def test_ratio(self):
        c = ShapeCheck("x", "cfg", paper_value=2.0, measured_value=1.0)
        assert c.ratio == 0.5


class TestPaperData:
    def test_table1_exact_values(self):
        # Spot-check against the paper's Table I.
        rows = {r.kernel: r for r in paper_data.TABLE1_SEISMIC}
        assert rows["HOT1"].base == 128
        assert rows["HOT2"].saved == 93
        assert rows["HOT7"].dim == 40

    def test_table1_saved_consistent(self):
        for r in paper_data.TABLE1_SEISMIC:
            assert r.saved == r.base - r.dim

    def test_table2_na_rows(self):
        rows = {r.kernel: r for r in paper_data.TABLE2_SP}
        for k in ("HOT1", "HOT3", "HOT6", "HOT10"):
            assert rows[k].dim is None

    def test_table2_saved_consistent(self):
        for r in paper_data.TABLE2_SP:
            effective = r.small if r.dim is None else r.dim
            assert r.saved == r.base - effective

    def test_headline_speedups(self):
        assert paper_data.HEADLINE_MAX_SPEEDUP == {"spec": 2.08, "nas": 2.5}

    def test_fig7_seismic_slowdown_recorded(self):
        assert paper_data.FIG7_SPEC_SAFARA_ONLY["355.seismic"] < 1.0

    def test_fig9_cumulative_monotone(self):
        for name, (s, sd, sds) in paper_data.FIG9_SPEC_CLAUSES.items():
            assert s <= sd <= sds, name

    def test_fig10_final_at_most_headline(self):
        assert max(v[1] for v in paper_data.FIG10_NAS.values()) <= 2.5
