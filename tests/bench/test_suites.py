"""Structural tests over the benchmark suites."""

import pytest

from repro.bench import load_all
from repro.bench.paper_data import TABLE1_SEISMIC, TABLE2_SP
from repro.compiler import BASE, SMALL, SMALL_DIM, compile_source
from repro.ir import build_module
from repro.lang import parse_program

SPEC_SUITE, NAS_SUITE = load_all()


class TestRegistries:
    def test_spec_has_ten_benchmarks(self):
        assert len(SPEC_SUITE) == 10

    def test_nas_has_six_benchmarks(self):
        assert NAS_SUITE.names() == ["BT", "CG", "EP", "LU", "MG", "SP"]

    def test_paper_benchmark_names_present(self):
        names = set(SPEC_SUITE.names())
        assert {"303.ostencil", "304.olbm", "314.omriq", "355.seismic", "356.sp"} <= names

    def test_duplicate_registration_rejected(self):
        spec = SPEC_SUITE.get("352.ep")
        with pytest.raises(ValueError, match="duplicate"):
            SPEC_SUITE.register(spec)

    def test_wrong_suite_rejected(self):
        from repro.bench import BenchmarkSpec

        bogus = BenchmarkSpec(
            suite="nas", name="X", language="c", description="", source="", env={}
        )
        with pytest.raises(ValueError, match="belongs"):
            SPEC_SUITE.register(bogus)


class TestClauseUsageMatchesPaper:
    def test_dim_only_on_fortran_355_356(self):
        """Section V-C: dim is used in 355 and 356 only."""
        with_dim = [s.name for s in SPEC_SUITE.all() if s.uses_dim]
        assert sorted(with_dim) == ["355.seismic", "356.sp"]

    def test_c_benchmarks_have_no_dim(self):
        for spec in SPEC_SUITE.all() + NAS_SUITE.all():
            if spec.language == "c":
                assert not spec.uses_dim
                assert "dim(" not in spec.source

    def test_nas_all_c(self):
        assert all(s.language == "c" for s in NAS_SUITE.all())


class TestBenchmarkWellFormed:
    @pytest.mark.parametrize(
        "spec", SPEC_SUITE.all() + NAS_SUITE.all(), ids=lambda s: s.qualified_name
    )
    def test_parses_and_lowers(self, spec):
        fn = build_module(parse_program(spec.source)).functions[0]
        assert fn.regions(), "benchmark must contain offload regions"

    @pytest.mark.parametrize(
        "spec", SPEC_SUITE.all() + NAS_SUITE.all(), ids=lambda s: s.qualified_name
    )
    def test_compiles_under_base(self, spec):
        prog = compile_source(spec.source, BASE)
        assert all(k.registers > 0 for k in prog.kernels)

    def test_seismic_has_seven_hot_kernels(self):
        prog = compile_source(SPEC_SUITE.get("355.seismic").source, BASE)
        assert len(prog.kernels) == len(TABLE1_SEISMIC) == 7

    def test_sp_has_ten_hot_kernels(self):
        prog = compile_source(SPEC_SUITE.get("356.sp").source, BASE)
        assert len(prog.kernels) == len(TABLE2_SP) == 10


class TestRegisterShape:
    """The Table I/II mechanisms, asserted as invariants rather than exact
    numbers: small never increases registers; dim (where applicable) never
    increases them further."""

    @pytest.mark.parametrize(
        "name", ["355.seismic", "356.sp", "351.palm"], ids=str
    )
    def test_small_monotone(self, name):
        spec = SPEC_SUITE.get(name)
        base = compile_source(spec.source, BASE)
        small = compile_source(spec.source, SMALL)
        for kb, ks in zip(base.kernels, small.kernels):
            assert ks.registers <= kb.registers

    @pytest.mark.parametrize("name", ["355.seismic", "356.sp"], ids=str)
    def test_dim_monotone(self, name):
        spec = SPEC_SUITE.get(name)
        small = compile_source(spec.source, SMALL)
        dim = compile_source(spec.source, SMALL_DIM)
        for ks, kd in zip(small.kernels, dim.kernels):
            assert kd.registers <= ks.registers

    def test_seismic_dim_saves_substantially(self):
        spec = SPEC_SUITE.get("355.seismic")
        base = compile_source(spec.source, BASE)
        dim = compile_source(spec.source, SMALL_DIM)
        # Table I: every hot kernel saves at least a third of its registers.
        for kb, kd in zip(base.kernels, dim.kernels):
            assert kd.registers <= (2 * kb.registers) // 3

    def test_sp_na_rows_dim_noop(self):
        """Kernels using <2 same-shape allocatables: dim == small."""
        spec = SPEC_SUITE.get("356.sp")
        small = compile_source(spec.source, SMALL)
        dim = compile_source(spec.source, SMALL_DIM)
        na_rows = [0, 2, 5, 9]  # HOT1, HOT3, HOT6, HOT10
        for i in na_rows:
            assert dim.kernels[i].registers == small.kernels[i].registers
