"""Unit tests for VIR code generation: dope vectors, offsets, launch
topology, and the dim/small effects on the emitted code."""

import pytest

from repro.codegen import CodegenOptions, Op, generate_kernel
from repro.ir import build_module
from repro.lang import parse_program


def lower_region(src, **opts):
    fn = build_module(parse_program(src)).functions[0]
    region = fn.regions()[0]
    kernel = generate_kernel(region, fn.symtab, CodegenOptions(**opts))
    return kernel, fn


VLA3_SRC = """
kernel k(const double u[1:nz][1:ny][1:nx], const double v[1:nz][1:ny][1:nx],
         double out[1:nz][1:ny][1:nx], int nx, int ny, int nz) {
  #pragma acc kernels loop gang vector(64) %s
  for (i = 1; i < nx; i++) {
    #pragma acc loop seq
    for (k = 1; k < nz; k++) {
      out[k][2][i] = u[k][2][i] + v[k][2][i];
    }
  }
}
"""


class TestDopeVectors:
    def test_fortran_3d_needs_five_dope_temps_per_array(self):
        """Section IV-A: 3 lower bounds + 2 lengths per allocatable array."""
        kernel, _ = lower_region(VLA3_SRC % "", honor_dim=False)
        dope = [i for i in kernel.instrs if i.op is Op.LD_DOPE]
        # 3 arrays x (3 lb + 2 len) = 15 — the paper's t0..t14.
        assert len(dope) == 15

    def test_c_vla_needs_only_lengths(self):
        src = """
        kernel k(const double u[nz][ny][nx], double out[nz][ny][nx],
                 int nx, int ny, int nz) {
          #pragma acc kernels loop gang vector(64)
          for (i = 1; i < nx; i++) { out[1][1][i] = u[1][1][i]; }
        }
        """
        kernel, _ = lower_region(src, honor_dim=False)
        dope = [i for i in kernel.instrs if i.op is Op.LD_DOPE]
        # 2 arrays x 2 lengths (lower bounds are statically 0).
        assert len(dope) == 4
        assert all(i.dope_kind == "len" for i in dope)

    def test_static_array_needs_no_dope(self):
        src = """
        kernel k(const double u[64][32], double out[64][32], int n) {
          #pragma acc kernels loop gang vector(64)
          for (i = 1; i < n; i++) { out[1][i] = u[1][i]; }
        }
        """
        kernel, _ = lower_region(src)
        assert kernel.count(Op.LD_DOPE) == 0

    def test_pointer_needs_no_dope(self):
        src = """
        kernel k(const double * restrict u, double * restrict out, int n) {
          #pragma acc kernels loop gang vector(64)
          for (i = 1; i < n; i++) { out[i] = u[i]; }
        }
        """
        kernel, _ = lower_region(src)
        assert kernel.count(Op.LD_DOPE) == 0

    def test_dim_clause_shares_dope_temps(self):
        clause = "dim((1:nz,1:ny,1:nx)(u, v, out))"
        kernel, _ = lower_region(VLA3_SRC % clause, honor_dim=True)
        dope = [i for i in kernel.instrs if i.op is Op.LD_DOPE]
        assert len(dope) == 5  # one shared set — the paper's reduction

    def test_dim_clause_ignored_when_not_honored(self):
        clause = "dim((1:nz,1:ny,1:nx)(u, v, out))"
        kernel, _ = lower_region(VLA3_SRC % clause, honor_dim=False)
        assert kernel.count(Op.LD_DOPE) == 15


class TestOffsetSharing:
    def test_same_subscripts_same_class_share_offset(self):
        clause = "dim((1:nz,1:ny,1:nx)(u, v, out))"
        with_dim, _ = lower_region(VLA3_SRC % clause, honor_dim=True)
        without, _ = lower_region(VLA3_SRC % "", honor_dim=False)
        # Offset arithmetic (SUB/MAD on 64-bit) shrinks with sharing.
        def addr_ops(k):
            return sum(1 for i in k.instrs if i.op in (Op.SUB, Op.MAD) and (i.dst and i.dst.bits == 64))
        assert addr_ops(with_dim) < addr_ops(without)

    def test_cse_within_iteration(self):
        src = """
        kernel k(double a[n][n], int n) {
          #pragma acc kernels loop gang vector(64)
          for (i = 1; i < n; i++) {
            a[i][3] = a[i][3] * 2.0;
          }
        }
        """
        kernel, _ = lower_region(src)
        # load + store share one offset: exactly one MAD chain.
        with_cse = sum(1 for i in kernel.instrs if i.op is Op.MAD)
        kernel2, _ = lower_region(src, cse_offsets=False)
        without_cse = sum(1 for i in kernel2.instrs if i.op is Op.MAD)
        assert with_cse < without_cse


class TestSmallClause:
    def test_small_offsets_are_32bit(self):
        clause = "small(u, v, out)"
        kernel, _ = lower_region(VLA3_SRC % clause, honor_small=True)
        mem = [i for i in kernel.instrs if i.op in (Op.LD, Op.ST)]
        for ins in mem:
            offset_reg = ins.srcs[1]
            assert offset_reg.bits == 32

    def test_default_offsets_are_64bit(self):
        kernel, _ = lower_region(VLA3_SRC % "", honor_small=False)
        mem = [i for i in kernel.instrs if i.op in (Op.LD, Op.ST)]
        for ins in mem:
            assert ins.srcs[1].bits == 64

    def test_static_small_array_auto_detected(self):
        src = """
        kernel k(const double u[64][32], double out[64][32], int n) {
          #pragma acc kernels loop gang vector(64)
          for (i = 1; i < n; i++) { out[1][i] = u[1][i]; }
        }
        """
        kernel, _ = lower_region(src, honor_small=False)  # no clause needed
        mem = [i for i in kernel.instrs if i.op in (Op.LD, Op.ST)]
        assert all(ins.srcs[1].bits == 32 for ins in mem)


class TestLaunchTopology:
    def test_vector_size_sets_threads_per_block(self):
        kernel, _ = lower_region(VLA3_SRC % "")
        assert kernel.launch.threads_per_block == 64

    def test_total_threads_from_parallel_trips(self):
        kernel, _ = lower_region(VLA3_SRC % "")
        env = {"nx": 129, "ny": 4, "nz": 4}
        assert kernel.launch.total_threads(env) == 128

    def test_two_level_topology(self):
        src = """
        kernel k(double a[n][m], int n, int m) {
          #pragma acc kernels loop gang
          for (j = 0; j < m; j++) {
            #pragma acc loop gang vector(32)
            for (i = 0; i < n; i++) { a[i][j] = 0.0; }
          }
        }
        """
        kernel, _ = lower_region(src)
        env = {"n": 64, "m": 16}
        assert kernel.launch.total_threads(env) == 64 * 16
        assert kernel.launch.threads_per_block == 32

    def test_thread_guard_emitted(self):
        kernel, _ = lower_region(VLA3_SRC % "")
        # Parallel loop lowers to tid computation + guarded body.
        assert kernel.count(Op.TID) >= 1
        assert kernel.count(Op.IF_BEGIN) >= 1


class TestMemoryAttributes:
    def test_const_arrays_readonly_space(self):
        kernel, _ = lower_region(VLA3_SRC % "")
        loads = [i for i in kernel.instrs if i.op is Op.LD]
        assert all(i.space.value == "readonly" for i in loads)

    def test_readonly_disabled(self):
        kernel, _ = lower_region(VLA3_SRC % "", readonly_cache=False)
        loads = [i for i in kernel.instrs if i.op is Op.LD]
        assert all(i.space.value == "global" for i in loads)

    def test_store_records_access_pattern(self):
        kernel, _ = lower_region(VLA3_SRC % "")
        stores = [i for i in kernel.instrs if i.op is Op.ST]
        assert stores
        for st in stores:
            assert st.access is not None
            assert st.access.pattern.value == "coalesced"

    def test_f64_width_recorded(self):
        kernel, _ = lower_region(VLA3_SRC % "")
        loads = [i for i in kernel.instrs if i.op is Op.LD]
        assert all(i.width_bits == 64 for i in loads)


class TestStructure:
    def test_seq_loop_markers_balanced(self):
        kernel, _ = lower_region(VLA3_SRC % "")
        assert kernel.count(Op.LOOP_BEGIN) == kernel.count(Op.LOOP_END) == 1

    def test_dump_is_readable(self):
        kernel, _ = lower_region(VLA3_SRC % "")
        text = kernel.dump()
        assert "loop_begin" in text
        assert "ld" in text

    def test_if_lowering(self):
        src = """
        kernel k(double a[n], int n) {
          #pragma acc kernels loop gang vector(64)
          for (i = 0; i < n; i++) {
            if (i > 2) { a[i] = 1.0; } else { a[i] = 2.0; }
          }
        }
        """
        kernel, _ = lower_region(src)
        assert kernel.count(Op.IF_ELSE) == 1
        assert kernel.count(Op.IF_BEGIN) == kernel.count(Op.IF_END)
