"""The generated-NumPy execution tier (`repro.codegen.numpy_source`).

The contract mirrors the vector engine's: whatever the generated program
does, outputs and :class:`~repro.gpu.interpreter.ExecutionStats` are
*exactly* those of the scalar interpreter.  Here that holds by
construction — the generated source calls the same runtime primitives in
the same order — and these tests pin the construction down: all 16
benchmarks bit-identical, cross-parse rebinding, header validation,
cache behaviour, and the fallback ladder.
"""

import numpy as np
import pytest

from repro.bench import NAS, SPEC, load_all
from repro.bench.args import build_test_args, copy_args
from repro.codegen import numpy_source
from repro.codegen.numpy_source import (
    CodegenUnsupported,
    FunctionCache,
    bind_source,
    compile_kernel,
    enumerate_nodes,
    generate_source,
    get_or_compile,
)
from repro.gpu.interpreter import run_kernel
from repro.gpu.vector_exec import VectorUnsupported, execute_kernel
from repro.ir import build_module
from repro.lang import parse_program
from repro.obs.metrics import MetricsRegistry

SRC = """
kernel k(double a[n], const double b[n], int n) {
  #pragma acc kernels loop gang vector(64)
  for (i = 0; i < n; i++) { a[i] = b[i] * 3.0 + i; }
}
"""


def lower(src):
    return build_module(parse_program(src)).functions[0]


def _args(n=7, seed=0):
    rng = np.random.default_rng(seed)
    return {"a": np.zeros(n), "b": rng.uniform(0.5, 2.0, n), "n": n}


class TestBenchmarkOracle:
    """All 16 modelled benchmarks against the scalar oracle."""

    def _specs(self):
        load_all()
        return list(SPEC.all()) + list(NAS.all())

    def test_all_benchmarks_bit_identical_with_equal_stats(self):
        used = {}
        for spec in self._specs():
            fn, args = build_test_args(spec)
            s_arrays, s_stats = run_kernel(fn, copy_args(args))
            fn2, args2 = build_test_args(spec)
            c_arrays, c_stats, info = execute_kernel(
                fn2, args2, content_key=f"test:{spec.name}"
            )
            used[spec.name] = info.used
            assert sorted(s_arrays) == sorted(c_arrays), spec.name
            for name in s_arrays:
                np.testing.assert_array_equal(
                    s_arrays[name], c_arrays[name], err_msg=f"{spec.name}:{name}"
                )
            assert s_stats == c_stats, spec.name
        # 14 of 16 run on generated code; the EP kernels' LCG exceeds the
        # int64-safe product range by design and must reach the oracle.
        assert sum(1 for u in used.values() if u == "codegen") >= 14, used
        assert used["352.ep"] == "scalar"
        assert used["EP"] == "scalar"

    def test_strict_codegen_raises_where_auto_falls_back(self):
        load_all()
        fn, args = build_test_args(SPEC.get("352.ep"))
        with pytest.raises(VectorUnsupported):
            execute_kernel(fn, args, executor="codegen")


class TestGeneratedSource:
    def test_header_names_kernel_and_node_count(self):
        fn = lower(SRC)
        source = generate_source(fn)
        lines = source.splitlines()
        assert lines[0] == "# repro:numpy_source v1"
        assert lines[1] == "# kernel: k"
        assert lines[2] == f"# nodes: {len(enumerate_nodes(fn))}"

    def test_generation_is_deterministic(self):
        assert generate_source(lower(SRC)) == generate_source(lower(SRC))

    def test_enumerate_nodes_is_stable_across_parses(self):
        a = [type(n).__name__ for n in enumerate_nodes(lower(SRC))]
        b = [type(n).__name__ for n in enumerate_nodes(lower(SRC))]
        assert a == b

    def test_cross_parse_rebinding_matches_scalar(self):
        """Source generated from one parse must bind and run correctly
        against a *different* parse of the same kernel (the warm-restart
        path: node identities differ, walk positions do not)."""
        source = generate_source(lower(SRC))
        gk = bind_source(lower(SRC), source)
        from repro.codegen.vector_lower import plan_kernel
        from repro.gpu.interpreter import bind_arguments
        from repro.gpu.vector_exec import VectorInterpreter

        fn = lower(SRC)
        args = _args()
        s_arrays, s_stats = run_kernel(lower(SRC), copy_args(args))
        scalars, arrays, lowers = bind_arguments(fn, args)
        interp = VectorInterpreter(fn, plan_kernel(fn), scalars, arrays, lowers)
        gk.run(interp)
        np.testing.assert_array_equal(arrays["a"], s_arrays["a"])
        assert interp.stats == s_stats


class TestBindValidation:
    def test_missing_header_is_rejected(self):
        with pytest.raises(CodegenUnsupported, match="format header"):
            bind_source(lower(SRC), "print('hello')\n")

    def test_wrong_kernel_name_is_rejected(self):
        other = SRC.replace("kernel k(", "kernel other(")
        source = generate_source(lower(other))
        with pytest.raises(CodegenUnsupported, match="not 'k'"):
            bind_source(lower(SRC), source)

    def test_stale_node_count_is_rejected(self):
        grown = SRC.replace("b[i] * 3.0 + i", "b[i] * 3.0 + i + 1.0")
        source = generate_source(lower(grown)).replace(
            "kernel: k", "kernel: k"
        )
        with pytest.raises(CodegenUnsupported, match="node count"):
            bind_source(lower(SRC), source)

    def test_syntactically_broken_source_is_rejected(self):
        source = generate_source(lower(SRC)) + "\ndef broken(:\n"
        with pytest.raises(CodegenUnsupported, match="failed to bind"):
            bind_source(lower(SRC), source)

    def test_generated_source_has_no_builtins(self):
        """The exec namespace is sealed: generated text can only reach the
        interpreter primitives handed to it."""
        source = generate_source(lower(SRC))
        evil = source.replace(
            "def __kernel__(R):", "def __kernel__(R):\n        open('/x')", 1
        )
        gk = bind_source(lower(SRC), evil)
        from repro.codegen.vector_lower import plan_kernel
        from repro.gpu.interpreter import bind_arguments
        from repro.gpu.vector_exec import VectorInterpreter

        fn = lower(SRC)
        scalars, arrays, lowers = bind_arguments(fn, _args())
        interp = VectorInterpreter(fn, plan_kernel(fn), scalars, arrays, lowers)
        with pytest.raises(NameError):
            gk.run(interp)


class TestFallbackLadder:
    def test_generation_failure_falls_back_to_vector(self, monkeypatch, caplog):
        import logging

        def boom(fn, plan=None, **kw):
            raise CodegenUnsupported("synthetic generation failure")

        monkeypatch.setattr(numpy_source, "get_or_compile", boom)
        with caplog.at_level(logging.INFO, logger="repro.gpu.vector_exec"):
            _, stats, info = execute_kernel(lower(SRC), _args())
        assert info.used == "vector"
        s_arrays, s_stats = run_kernel(lower(SRC), _args())
        assert stats == s_stats
        assert any("falls back to vector" in r.message for r in caplog.records)

    def test_generation_failure_raises_when_pinned(self, monkeypatch):
        def boom(fn, plan=None, **kw):
            raise CodegenUnsupported("synthetic generation failure")

        monkeypatch.setattr(numpy_source, "get_or_compile", boom)
        with pytest.raises(CodegenUnsupported):
            execute_kernel(lower(SRC), _args(), executor="codegen")

    def test_unplannable_kernel_reaches_scalar(self):
        src = """
        kernel k(double a[n], const double b[n], int n) {
          #pragma acc kernels loop gang vector(64)
          for (i = 0; i < n - 1; i++) { a[i] = a[i + 1] * 0.5 + b[i]; }
        }
        """
        _, _, info = execute_kernel(lower(src), _args())
        assert info.used == "scalar"
        assert info.fallback_reason
        with pytest.raises(VectorUnsupported):
            execute_kernel(lower(src), _args(), executor="codegen")

    def test_unknown_statement_raises_codegen_unsupported(self):
        from repro.ir.stmt import Stmt

        class Mystery(Stmt):
            pass

        fn = lower(SRC)
        fn.body.append(Mystery())
        with pytest.raises(CodegenUnsupported, match="unknown statement"):
            generate_source(fn)


class TestFunctionCache:
    def test_content_key_hits_skip_generation(self, monkeypatch):
        cache = FunctionCache()
        monkeypatch.setattr(numpy_source, "_CACHE", cache)
        fn = lower(SRC)
        get_or_compile(fn, content_key="deadbeef")
        calls = []
        monkeypatch.setattr(
            numpy_source,
            "compile_kernel",
            lambda *a, **k: calls.append(1),
        )
        gk = get_or_compile(fn, content_key="deadbeef")
        assert gk.kernel == "k"
        assert calls == []
        assert cache.hits == 1

    def test_metrics_count_hits_and_misses(self, monkeypatch):
        cache = FunctionCache()
        monkeypatch.setattr(numpy_source, "_CACHE", cache)
        m = MetricsRegistry()
        fn = lower(SRC)
        get_or_compile(fn, content_key="deadbeef", metrics=m)
        get_or_compile(fn, content_key="deadbeef", metrics=m)
        assert m.get("cache.fnobj.misses").value == 1
        assert m.get("cache.fnobj.hits").value == 1
        assert m.get("codegen.generate_ms").count == 1

    def test_lru_bound(self):
        cache = FunctionCache(max_entries=2)
        gk = compile_kernel(lower(SRC))
        for key in ("aa", "bb", "cc"):
            cache.put(key, gk)
        assert cache.get("aa") is None  # evicted
        assert cache.get("cc") is gk

    def test_persisted_source_rebinds_without_planning(self, monkeypatch):
        cache = FunctionCache()
        monkeypatch.setattr(numpy_source, "_CACHE", cache)
        source = generate_source(lower(SRC))

        def no_plan(*a, **k):
            raise AssertionError("planner must not run on the warm path")

        monkeypatch.setattr(numpy_source, "plan_kernel", no_plan)
        gk = get_or_compile(lower(SRC), content_key="cafe00", source=source)
        assert gk.source == source

    def test_corrupt_persisted_source_falls_back_to_planning(self, monkeypatch):
        cache = FunctionCache()
        monkeypatch.setattr(numpy_source, "_CACHE", cache)
        m = MetricsRegistry()
        gk = get_or_compile(
            lower(SRC),
            content_key="cafe01",
            source="# garbage, not a generated program",
            metrics=m,
        )
        assert gk.kernel == "k"  # regenerated from the plan
        assert m.get("cache.disk.codegen_corrupt").value == 1


class TestWarmFastPath:
    def test_repeat_launches_skip_the_planner(self, monkeypatch):
        import repro.gpu.vector_exec as vx

        cache = FunctionCache()
        monkeypatch.setattr(numpy_source, "_CACHE", cache)
        fn = lower(SRC)
        _, _, info = execute_kernel(fn, _args(), content_key="warm01")
        assert info.used == "codegen"

        def no_plan(*a, **k):
            raise AssertionError("planner must not run on a warm launch")

        monkeypatch.setattr(vx, "plan_kernel", no_plan)
        args = _args()
        _, stats, info = execute_kernel(fn, args, content_key="warm01")
        assert info.used == "codegen"
        assert cache.hits == 1
        s_arrays, s_stats = run_kernel(lower(SRC), _args())
        np.testing.assert_array_equal(args["a"], s_arrays["a"])
        assert stats == s_stats

    def test_fast_path_preserves_demotion_reasons(self):
        """Demotions ride in the generated-source header, so the cached
        launch (which never re-plans) still reports them."""
        src = """
        kernel k3(double a[n], const double b[n], double s, int n) {
          #pragma acc kernels loop gang vector(64)
          for (i = 0; i < n; i++) { a[i] = b[i] * 2.0; }
          #pragma acc kernels loop gang vector(64)
          for (i = 0; i < n; i++) { s = s + a[i]; }
        }
        """
        fn = lower(src)
        args = {"a": np.zeros(5), "b": np.ones(5), "s": 0.0, "n": 5}
        _, _, cold = execute_kernel(fn, dict(args), content_key="warm02")
        _, _, warm = execute_kernel(fn, dict(args), content_key="warm02")
        assert cold.used == "codegen" and warm.used == "codegen"
        assert cold.demoted  # a real demotion is present
        assert list(warm.demoted) == list(cold.demoted)


class TestSessionExecute:
    def test_execute_records_codegen_and_caches_function(self, monkeypatch):
        from repro.compiler import CompilerSession

        cache = FunctionCache()
        monkeypatch.setattr(numpy_source, "_CACHE", cache)
        session = CompilerSession()
        for _ in range(2):
            _, _, info = session.execute(
                lower(SRC), _args(), content_key="feed05"
            )
            assert info.used == "codegen"
        assert cache.hits == 1
        d = session.stats_dict()["execution"]
        assert d["codegen"] == 2
        assert session.metrics.get("cache.fnobj.hits").value == 1
