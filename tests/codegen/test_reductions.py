"""Tests for OpenACC reduction lowering (shared-memory tree reduce)."""

import math

from repro.codegen import CodegenOptions, Op, generate_kernel
from repro.gpu import estimate_time, ptxas_info
from repro.ir import build_module
from repro.lang import parse_program

RED_SRC = """
kernel dot(const double x[n], const double y[n], double out[1], int n) {
  double s = 0.0;
  #pragma acc kernels loop gang vector(256) reduction(+:s)
  for (i = 0; i < n; i++) {
    s += x[i] * y[i];
  }
  out[0] = s;
}
"""


def lower_kernel(src, **opts):
    fn = build_module(parse_program(src)).functions[0]
    return generate_kernel(fn.regions()[0], fn.symtab, CodegenOptions(**opts)), fn


class TestReductionLowering:
    def test_shared_memory_allocated(self):
        kernel, _ = lower_kernel(RED_SRC)
        # 256 threads x 8 bytes per double partial.
        assert kernel.smem_bytes == 256 * 8

    def test_tree_depth_is_log2_tpb(self):
        kernel, _ = lower_kernel(RED_SRC)
        assert kernel.count(Op.BAR) == int(math.log2(256))

    def test_shared_loads_and_stores_emitted(self):
        kernel, _ = lower_kernel(RED_SRC)
        shared_ops = [
            i
            for i in kernel.instrs
            if i.op in (Op.LD, Op.ST) and i.space is not None and i.space.value == "shared"
        ]
        assert len(shared_ops) >= 2 * int(math.log2(256))

    def test_block_result_published_globally(self):
        kernel, _ = lower_kernel(RED_SRC)
        publishes = [
            i
            for i in kernel.instrs
            if i.op is Op.ST and "block result" in i.comment
        ]
        assert len(publishes) == 1

    def test_no_reduction_no_shared_memory(self):
        src = """
        kernel k(double a[n], int n) {
          #pragma acc kernels loop gang vector(256)
          for (i = 0; i < n; i++) { a[i] = 1.0; }
        }
        """
        kernel, _ = lower_kernel(src)
        assert kernel.smem_bytes == 0
        assert kernel.count(Op.BAR) == 0

    def test_two_reductions_double_scratch(self):
        src = """
        kernel k(const double x[n], double out[2], int n) {
          double s = 0.0;
          double t = 0.0;
          #pragma acc kernels loop gang vector(128) reduction(+:s) reduction(max:t)
          for (i = 0; i < n; i++) {
            s += x[i];
            t = max(t, x[i]);
          }
          out[0] = s;
          out[1] = t;
        }
        """
        kernel, _ = lower_kernel(src)
        assert kernel.smem_bytes == 2 * 128 * 8


class TestReductionCosts:
    def test_shared_memory_counts_against_occupancy(self):
        """A block needing lots of shared scratch caps resident blocks."""
        from repro.gpu import compute_occupancy

        kernel, _ = lower_kernel(RED_SRC)
        with_smem = compute_occupancy(32, 256, shared_mem_per_block=kernel.smem_bytes)
        without = compute_occupancy(32, 256)
        assert with_smem.active_warps <= without.active_warps

    def test_timing_includes_barrier_cost(self):
        kernel, _ = lower_kernel(RED_SRC)
        t = estimate_time(kernel, ptxas_info(kernel), {"n": 1 << 20})
        assert t.time_ms > 0
        # The epilogue executes once per thread, not per loop iteration:
        # loads from shared = log2(256), independent of n.
        shared_loads = [
            i
            for i in kernel.instrs
            if i.op is Op.LD and i.space is not None and i.space.value == "shared"
        ]
        assert len(shared_loads) == 8
