"""Tests for the vectorization planner (`repro.codegen.vector_lower`).

Each case checks a *decision* — axis or demotion with a specific reason —
on a kernel built to isolate one rule.  Execution-level equivalence is
covered by tests/gpu/test_vector_exec.py; here we pin down why the
planner accepts or rejects, so a regression in one soundness argument
fails loudly instead of silently demoting half the benchmarks.
"""

from repro.codegen.vector_lower import AXIS, SEQ, plan_kernel
from repro.ir import build_module
from repro.lang import parse_program


def plan(src):
    fn = build_module(parse_program(src)).functions[0]
    return plan_kernel(fn)


def modes(kernel_plan):
    return {lp.var: lp.mode for lp in kernel_plan.by_loop_id.values()}


class TestBasicDecisions:
    def test_independent_parallel_loop_is_axis(self):
        p = plan(
            """
            kernel k(double a[n], const double b[n], int n) {
              #pragma acc kernels loop gang vector(64)
              for (i = 0; i < n; i++) { a[i] = b[i] + 1.0; }
            }
            """
        )
        assert modes(p) == {"i": AXIS}
        assert not p.demotion_reasons

    def test_seq_directive_stays_sequential_without_reason(self):
        p = plan(
            """
            kernel k(double a[n], int n) {
              #pragma acc loop seq
              for (i = 0; i < n; i++) { a[i] = 1.0; }
            }
            """
        )
        assert modes(p) == {"i": SEQ}
        assert not p.demotion_reasons

    def test_reduction_clause_demotes(self):
        p = plan(
            """
            kernel k(const double b[n], double s[1], int n) {
              double acc = 0.0;
              #pragma acc kernels loop gang vector(64) reduction(+:acc)
              for (i = 0; i < n; i++) { acc += b[i]; }
              s[0] = acc;
            }
            """
        )
        assert modes(p)["i"] == SEQ
        assert any("reduction" in r for r in p.demotion_reasons)

    def test_carried_scalar_demotes(self):
        p = plan(
            """
            kernel k(double a[n], const double b[n], int n) {
              double s = 0.0;
              #pragma acc kernels loop gang vector(64)
              for (i = 0; i < n; i++) { s = s * 0.5 + b[i]; a[i] = s; }
            }
            """
        )
        assert modes(p)["i"] == SEQ
        assert any("carried across iterations" in r for r in p.demotion_reasons)

    def test_private_read_after_loop_demotes(self):
        p = plan(
            """
            kernel k(double a[n], const double b[n], double t[1], int n) {
              double s = 0.0;
              #pragma acc kernels loop gang vector(64)
              for (i = 0; i < n; i++) { s = b[i] * 2.0; a[i] = s; }
              t[0] = s;
            }
            """
        )
        assert modes(p)["i"] == SEQ
        assert any("read after the loop" in r for r in p.demotion_reasons)

    def test_cross_lane_read_write_overlap_demotes(self):
        p = plan(
            """
            kernel k(double a[n], int n) {
              #pragma acc kernels loop gang vector(64)
              for (i = 0; i < n - 1; i++) { a[i] = a[i + 1] * 0.5; }
            }
            """
        )
        assert modes(p)["i"] == SEQ
        assert any("overlap" in r for r in p.demotion_reasons)


class TestDelinearization:
    def test_flat_pointer_subscript_vectorizes_within_radix(self):
        # (j*nx + i) with 1 <= i <= nx-2: the digit fits its radix, so the
        # flat offset is injective in (j, i) and both loops become axes.
        p = plan(
            """
            kernel k(double * restrict a, const double * restrict b,
                     int ny, int nx) {
              #pragma acc kernels loop gang vector(64)
              for (j = 1; j < ny - 1; j++) {
                #pragma acc loop vector
                for (i = 1; i < nx - 1; i++) {
                  a[j * nx + i] = b[j * nx + i] + b[j * nx + i - 1];
                }
              }
            }
            """
        )
        assert modes(p) == {"j": AXIS, "i": AXIS}

    def test_digit_overflowing_its_radix_demotes(self):
        # i runs to nx+1: the low digit can overflow into j's stride, so
        # distinct (j, i) pairs may alias.  The read forces the planner to
        # prove injectivity, which it can't — it must refuse.
        p = plan(
            """
            kernel k(double * restrict a, int ny, int nx) {
              #pragma acc kernels loop gang vector(64)
              for (j = 1; j < ny - 1; j++) {
                #pragma acc loop vector
                for (i = 0; i < nx + 2; i++) {
                  a[j * nx + i] = a[j * nx + i] + 1.0;
                }
              }
            }
            """
        )
        assert SEQ in modes(p).values()
        assert any("overlap" in r for r in p.demotion_reasons)


class TestLaneDeterminedWrites:
    def test_unconditional_duplicate_write_is_axis(self):
        # out[j] written by every i lane: last-wins resolves in C lane
        # order, which is the scalar iteration order.
        p = plan(
            """
            kernel k(double out[m], int m, int n) {
              #pragma acc kernels loop gang vector(64)
              for (j = 0; j < m; j++) {
                #pragma acc loop vector
                for (i = 0; i < n; i++) { out[j] = i * 1.0; }
              }
            }
            """
        )
        assert modes(p) == {"j": AXIS, "i": AXIS}

    def test_lane_varying_guard_breaks_last_wins(self):
        # Under `if (b[i] > 0)` some steps write on some lanes only; the
        # last store touching out[j] need not come from the scalar order's
        # winning lane, so the planner must demote.
        p = plan(
            """
            kernel k(double out[m], const double b[n], int m, int n) {
              #pragma acc kernels loop gang vector(64)
              for (j = 0; j < m; j++) {
                #pragma acc loop vector
                for (i = 0; i < n; i++) {
                  if (b[i] > 0.0) { out[j] = i * 1.0; }
                }
              }
            }
            """
        )
        assert SEQ in modes(p).values()
        assert any("collide" in r for r in p.demotion_reasons)

    def test_lane_varying_trip_count_breaks_last_wins(self):
        # The inner sequential loop's trip count depends on the lane (k
        # runs to i), so later steps write on a shrinking subset of lanes.
        p = plan(
            """
            kernel k(double out[m], int m, int n) {
              #pragma acc kernels loop gang vector(64)
              for (j = 0; j < m; j++) {
                #pragma acc loop vector
                for (i = 0; i < n; i++) {
                  #pragma acc loop seq
                  for (k = 0; k < i; k++) { out[j] = k * 1.0; }
                }
              }
            }
            """
        )
        assert SEQ in modes(p).values()
        assert any("collide" in r for r in p.demotion_reasons)

    def test_lane_uniform_guard_keeps_last_wins(self):
        # A guard on uniform symbols only (n) holds on all lanes or none;
        # the last-wins argument survives.
        p = plan(
            """
            kernel k(double out[m], int m, int n) {
              #pragma acc kernels loop gang vector(64)
              for (j = 0; j < m; j++) {
                #pragma acc loop vector
                for (i = 0; i < n; i++) {
                  if (n > 4) { out[j] = i * 1.0; }
                }
              }
            }
            """
        )
        assert modes(p) == {"j": AXIS, "i": AXIS}


class TestFixpoint:
    def test_failing_sibling_does_not_demote_safe_loop(self):
        # The j loop's write pattern is unsafe under a joint (j, i) lane
        # space only if both were axes; the fixpoint drops j and keeps i.
        p = plan(
            """
            kernel k(double a[n], double c[n][n], const double b[n], int n) {
              #pragma acc kernels loop gang vector(64)
              for (i = 0; i < n - 1; i++) { a[i] = a[i + 1] + b[i]; }
              #pragma acc kernels loop gang vector(64)
              for (j = 0; j < n; j++) {
                #pragma acc loop vector
                for (i = 0; i < n; i++) { c[j][i] = b[i] * j; }
              }
            }
            """
        )
        # The symbol table renames the second `i` to keep names unique.
        m = {(lp.var, lp.mode) for lp in p.by_loop_id.values()}
        assert ("j", AXIS) in m
        assert any(var.startswith("i") and mode == AXIS for var, mode in m)
        assert any(var.startswith("i") and mode == SEQ for var, mode in m)
