"""Tests for vector-load fusion and the CUDA-like renderer."""

from repro.codegen import CodegenOptions, Op, generate_kernel, render_cuda
from repro.gpu import estimate_time, ptxas_info
from repro.ir import build_module
from repro.lang import parse_program

STENCIL_SRC = """
kernel k(double a[n], const double b[n], int n) {
  #pragma acc kernels loop gang vector(64)
  for (i = 1; i < n - 1; i++) {
    a[i] = b[i] + b[i+1] + b[i-1];
  }
}
"""


def lower(src):
    return build_module(parse_program(src)).functions[0]


class TestVectorLoads:
    def _loads(self, src, vectorize):
        fn = lower(src)
        kernel = generate_kernel(
            fn.regions()[0], fn.symtab, CodegenOptions(vectorize_loads=vectorize)
        )
        return kernel, [i for i in kernel.instrs if i.op is Op.LD]

    def test_adjacent_pair_fused(self):
        kernel, loads = self._loads(STENCIL_SRC, True)
        widths = sorted(l.width_bits for l in loads)
        assert widths == [64, 128]  # one scalar + one fused pair

    def test_fused_load_has_two_destinations(self):
        _, loads = self._loads(STENCIL_SRC, True)
        fused = next(l for l in loads if l.width_bits == 128)
        assert fused.dst is not None and fused.dst2 is not None
        assert fused.dst is not fused.dst2

    def test_disabled_by_default(self):
        _, loads = self._loads(STENCIL_SRC, False)
        assert all(l.width_bits == 64 for l in loads)
        assert len(loads) == 3

    def test_no_fusion_across_arrays(self):
        src = """
        kernel k(double a[n], const double b[n], const double c[n], int n) {
          #pragma acc kernels loop gang vector(64)
          for (i = 0; i < n - 1; i++) {
            a[i] = b[i] + c[i+1];
          }
        }
        """
        _, loads = self._loads(src, True)
        assert all(l.width_bits == 64 for l in loads)

    def test_no_fusion_for_gap_two(self):
        src = """
        kernel k(double a[n], const double b[n], int n) {
          #pragma acc kernels loop gang vector(64)
          for (i = 0; i < n - 2; i++) {
            a[i] = b[i] + b[i+2];
          }
        }
        """
        _, loads = self._loads(src, True)
        assert all(l.width_bits == 64 for l in loads)

    def test_multidim_fusion_requires_outer_dims_equal(self):
        src = """
        kernel k(double a[n][n], const double b[n][n], int n) {
          #pragma acc kernels loop gang vector(64)
          for (i = 1; i < n - 1; i++) {
            a[i][2] = b[i][2] + b[i][3] + b[i-1][3];
          }
        }
        """
        _, loads = self._loads(src, True)
        fused = [l for l in loads if l.width_bits == 128]
        assert len(fused) == 1  # b[i][2]+b[i][3]; b[i-1][3] differs in dim 0

    def test_fusion_reduces_issue_and_latency(self):
        fn = lower(STENCIL_SRC)
        k_vec = generate_kernel(
            fn.regions()[0], fn.symtab, CodegenOptions(vectorize_loads=True)
        )
        fn2 = lower(STENCIL_SRC)
        k_std = generate_kernel(
            fn2.regions()[0], fn2.symtab, CodegenOptions(vectorize_loads=False)
        )
        env = {"n": 1 << 20}
        t_vec = estimate_time(k_vec, ptxas_info(k_vec), env)
        t_std = estimate_time(k_std, ptxas_info(k_std), env)
        assert t_vec.profile.mem_latency < t_std.profile.mem_latency
        assert t_vec.time_ms <= t_std.time_ms


class TestCudaRenderer:
    def test_global_signature(self):
        fn = lower(STENCIL_SRC)
        text = render_cuda(fn.regions()[0], fn.symtab, name="stencil")
        assert text.startswith("__global__ void stencil(")
        assert "const double* __restrict__ b" in text

    def test_thread_index_mapping(self):
        fn = lower(STENCIL_SRC)
        text = render_cuda(fn.regions()[0], fn.symtab)
        assert "blockIdx.x * blockDim.x + threadIdx.x" in text
        assert "if (i <" in text  # bounds guard

    def test_seq_loop_rendered_as_for(self):
        src = """
        kernel k(double a[n][m], int n, int m) {
          #pragma acc kernels loop gang vector(64)
          for (i = 0; i < n; i++) {
            #pragma acc loop seq
            for (j = 0; j < m; j++) { a[i][j] = 0.0; }
          }
        }
        """
        fn = lower(src)
        text = render_cuda(fn.regions()[0], fn.symtab)
        assert "for (int j = 0; j < m; j++)" in text

    def test_clause_comments(self):
        src = """
        kernel k(const double u[1:n], double v[1:n], int n) {
          #pragma acc kernels loop gang vector(64) small(u, v) dim((1:n)(u, v))
          for (i = 1; i < n; i++) { v[i] = u[i]; }
        }
        """
        fn = lower(src)
        text = render_cuda(fn.regions()[0], fn.symtab)
        assert "// dim: shared offset computation" in text
        assert "// small: 32-bit offsets" in text


class TestOpenClRenderer:
    def test_kernel_signature(self):
        from repro.codegen import render_opencl

        fn = lower(STENCIL_SRC)
        text = render_opencl(fn.regions()[0], fn.symtab, name="stencil")
        assert text.startswith("__kernel void stencil(")
        assert "__global double*" in text
        assert "const __global double* restrict b" in text

    def test_work_item_indexing(self):
        from repro.codegen import render_opencl

        fn = lower(STENCIL_SRC)
        text = render_opencl(fn.regions()[0], fn.symtab)
        assert "get_group_id(0) * get_local_size(0) + get_local_id(0)" in text

    def test_axis_numbers_increment(self):
        from repro.codegen import render_opencl

        src = """
        kernel k(double a[n][m], int n, int m) {
          #pragma acc kernels loop gang vector(2)
          for (j = 0; j < m; j++) {
            #pragma acc loop gang vector(32)
            for (i = 0; i < n; i++) { a[i][j] = 0.0; }
          }
        }
        """
        fn = lower(src)
        text = render_opencl(fn.regions()[0], fn.symtab)
        assert "get_group_id(0)" in text
        assert "get_group_id(1)" in text
