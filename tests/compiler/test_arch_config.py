"""Arch-by-name in the configuration layer.

``CompilerConfig.arch`` accepts a registry profile name anywhere a
:class:`GpuArch` was accepted — the constructor, ``derive()`` and
``with_arch()`` all normalize through :data:`repro.gpu.arch.ARCHES` —
and an unknown name fails loudly with the registered profiles listed.
"""

import pytest

from repro.compiler.options import BASE, SMALL_DIM_SAFARA, CompilerConfig
from repro.compiler.session import CompilerSession
from repro.errors import ConfigError
from repro.gpu.arch import CDNA2_MI250, FERMI_LIKE, KEPLER_K20XM
from repro.ir import build_module
from repro.lang import parse_program

SRC = """
kernel axpy(const double x[1:n], double y[1:n], int n) {
  #pragma acc kernels loop gang vector(64)
  for (i = 1; i < n; i++) {
    y[i] = x[i] + y[i];
  }
}
"""


def region_of(src=SRC):
    fn = build_module(parse_program(src)).functions[0]
    return fn.regions()[0], fn.symtab


class TestArchByName:
    def test_constructor_resolves_profile_names(self):
        config = CompilerConfig(name="t", arch="cdna2-mi250")
        assert config.arch is CDNA2_MI250

    def test_constructor_resolves_aliases(self):
        assert CompilerConfig(name="t", arch="mi250").arch is CDNA2_MI250
        assert CompilerConfig(name="t", arch="kepler").arch is KEPLER_K20XM

    def test_derive_accepts_names(self):
        derived = BASE.derive(arch="fermi-like")
        assert derived.arch is FERMI_LIKE
        assert BASE.arch is KEPLER_K20XM  # base untouched

    def test_with_arch_accepts_names(self):
        assert BASE.with_arch("gfx90a").arch is CDNA2_MI250

    def test_gpu_arch_instances_keep_identity(self):
        assert BASE.derive(arch=FERMI_LIKE).arch is FERMI_LIKE

    def test_default_arch_is_the_papers_kepler(self):
        assert CompilerConfig(name="t").arch is KEPLER_K20XM

    def test_unknown_name_raises_listing_profiles(self):
        with pytest.raises(ConfigError, match="unknown GPU arch 'h100'") as exc:
            BASE.derive(arch="h100")
        assert "cdna2-mi250" in str(exc.value)
        assert "kepler-k20xm" in str(exc.value)

    def test_unknown_name_rejected_at_construction(self):
        with pytest.raises(ConfigError, match="unknown GPU arch"):
            CompilerConfig(name="t", arch="h100")

    def test_compile_under_named_arch(self):
        session = CompilerSession()
        program = session.compile_source(SRC, BASE.derive(arch="cdna2-mi250"))
        assert program.config.arch is CDNA2_MI250
        assert program.max_registers > 0


class TestGuardedCompileArchValidation:
    """Regression: ``compile_guarded``'s ``arch`` kwarg used to bypass
    ``CompilerConfig.derive`` — an arbitrary (even bogus) value flowed
    straight into the register allocator.  It now routes through the same
    validation as every other configuration field."""

    def test_arch_name_resolves(self):
        region, symtab = region_of()
        guarded = CompilerSession().compile_guarded(
            region, symtab, arch="cdna2-mi250"
        )
        assert guarded.optimized_info.registers > 0

    def test_unknown_arch_name_raises_config_error(self):
        region, symtab = region_of()
        with pytest.raises(ConfigError, match="unknown GPU arch 'h100'"):
            CompilerSession().compile_guarded(region, symtab, arch="h100")

    def test_arch_instances_still_accepted(self):
        region, symtab = region_of()
        guarded = CompilerSession().compile_guarded(
            region, symtab, arch=FERMI_LIKE
        )
        # Fermi's 63-register ceiling binds both versions.
        assert guarded.fallback_info.registers <= 63


class TestNamedArchEquivalence:
    def test_name_and_instance_derive_equal_configs(self):
        by_name = SMALL_DIM_SAFARA.derive(arch="cdna2-mi250")
        by_instance = SMALL_DIM_SAFARA.derive(arch=CDNA2_MI250)
        assert by_name == by_instance

    def test_compiled_programs_agree(self):
        session = CompilerSession()
        a = session.compile_source(SRC, BASE.derive(arch="mi250"))
        b = session.compile_source(SRC, BASE.derive(arch=CDNA2_MI250))
        assert a.max_registers == b.max_registers
