"""Tests for the command-line interface."""

import pytest

from repro.cli import main

DEMO = """
kernel demo(const double u[1:nz][1:ny][1:nx], double out[1:nz][1:ny][1:nx],
            int nx, int ny, int nz) {
  #pragma acc kernels loop gang vector(2) small(u, out) dim((1:nz,1:ny,1:nx)(u, out))
  for (j = 1; j < ny; j++) {
    #pragma acc loop gang vector(64)
    for (i = 1; i < nx; i++) {
      #pragma acc loop seq
      for (k = 1; k < nz; k++) {
        out[k][j][i] = u[k][j][i] + u[k-1][j][i];
      }
    }
  }
}
"""


@pytest.fixture
def demo_file(tmp_path):
    path = tmp_path / "demo.acc"
    path.write_text(DEMO)
    return str(path)


class TestCompileCommand:
    def test_default_configs(self, demo_file, capsys):
        assert main(["compile", demo_file]) == 0
        out = capsys.readouterr().out
        assert "OpenUH(base)" in out
        assert "OpenUH(SAFARA+small+dim)" in out
        assert "ptxas info" in out

    def test_env_enables_timing(self, demo_file, capsys):
        assert main(["compile", demo_file, "--env", "nx=64", "--env", "ny=32", "--env", "nz=16"]) == 0
        out = capsys.readouterr().out
        assert "ms" in out
        assert "occupancy" in out

    def test_explicit_config(self, demo_file, capsys):
        assert main(["compile", demo_file, "--config", "PGI"]) == 0
        out = capsys.readouterr().out
        assert "PGI" in out
        assert "OpenUH(base)" not in out

    def test_unknown_config_rejected(self, demo_file):
        with pytest.raises(SystemExit, match="unknown config"):
            main(["compile", demo_file, "--config", "zzz"])

    def test_bad_env_rejected(self, demo_file):
        with pytest.raises(SystemExit, match="name=value"):
            main(["compile", demo_file, "--env", "oops"])

    def test_dump_vir(self, demo_file, capsys):
        assert main(["compile", demo_file, "--config", "OpenUH(base)", "--dump-vir"]) == 0
        out = capsys.readouterr().out
        assert "loop_begin" in out
        assert "ld_dope" in out

    def test_cuda_rendering(self, demo_file, capsys):
        assert main(["compile", demo_file, "--config", "OpenUH(SAFARA+small+dim)", "--cuda"]) == 0
        out = capsys.readouterr().out
        assert "__global__ void" in out

    def test_trace_writes_chrome_trace(self, demo_file, tmp_path, capsys):
        import json

        trace_path = tmp_path / "trace.json"
        assert main(["compile", demo_file, "--trace", str(trace_path)]) == 0
        assert "trace:" in capsys.readouterr().out
        doc = json.loads(trace_path.read_text())
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"compile", "pipeline", "pass:safara", "ptxas"} <= names


class TestProfileCommand:
    def test_text_report(self, demo_file, capsys):
        assert main(["profile", demo_file]) == 0
        out = capsys.readouterr().out
        assert "== profile: demo" in out
        assert "registers" in out
        assert "memory traffic" in out
        assert "vector planner" in out

    def test_json_report(self, demo_file, capsys):
        import json

        assert main(["profile", demo_file, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["function"] == "demo"
        assert doc["kernels"][0]["traffic"]

    def test_run_attaches_execution(self, tmp_path, capsys):
        path = tmp_path / "saxpy.acc"
        path.write_text(
            "kernel k(double a[n], const double b[n], int n) {\n"
            "  #pragma acc kernels loop gang vector(64)\n"
            "  for (i = 0; i < n; i++) { a[i] = 2.0 * b[i] + i; }\n"
            "}\n"
        )
        assert main(["profile", str(path), "--run", "--env", "n=16"]) == 0
        assert "execution: executor=" in capsys.readouterr().out

    def test_unknown_config_rejected(self, demo_file):
        with pytest.raises(SystemExit, match="unknown config"):
            main(["profile", demo_file, "--config", "zzz"])


class TestStatsCommand:
    def test_text_output(self, demo_file, capsys):
        assert main(["stats", demo_file]) == 0
        out = capsys.readouterr().out
        assert "session.compilations" in out
        assert "cache.misses" in out

    def test_json_output(self, demo_file, capsys):
        import json

        assert main(["stats", demo_file, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["session.compilations"]["value"] == 2
        assert doc["cache.misses"]["type"] == "counter"


class TestOtherCommands:
    def test_bench_listing(self, capsys):
        assert main(["bench"]) == 0
        out = capsys.readouterr().out
        assert "355.seismic" in out
        assert "== NAS ==" in out

    def test_microbench(self, capsys):
        assert main(["microbench"]) == 0
        out = capsys.readouterr().out
        assert "uncoalesced" in out

    def test_experiments_subset(self, capsys):
        assert main(["experiments", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "HOT1" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit, match="unknown experiment"):
            main(["experiments", "fig99"])
