"""Unit tests for the compiler driver and configurations."""

import pytest

from repro.compiler import (
    ALL_CONFIGS,
    BASE,
    CARR_KENNEDY,
    CompilerConfig,
    PGI,
    SAFARA_ONLY,
    SMALL,
    SMALL_DIM,
    SMALL_DIM_SAFARA,
    compile_source,
    time_program,
)
from repro.gpu.arch import FERMI_LIKE

SRC = """
kernel k(const double u[1:nz][1:ny][1:nx], double out[1:nz][1:ny][1:nx],
         int nx, int ny, int nz) {
  #pragma acc kernels loop gang vector(2) small(u, out) dim((1:nz,1:ny,1:nx)(u, out))
  for (j = 1; j < ny; j++) {
    #pragma acc loop gang vector(64)
    for (i = 1; i < nx; i++) {
      #pragma acc loop seq
      for (k = 1; k < nz; k++) {
        out[k][j][i] = u[k][j][i] + u[k-1][j][i];
      }
    }
  }

  #pragma acc kernels loop gang vector(64)
  for (i = 1; i < nx; i++) {
    out[1][1][i] = u[1][1][i];
  }
}
"""

ENV = {"nx": 128, "ny": 64, "nz": 32}


class TestCompile:
    def test_one_compiled_kernel_per_region(self):
        prog = compile_source(SRC, BASE)
        assert len(prog.kernels) == 2
        assert prog.kernels[0].name.endswith("_k1")
        assert prog.kernels[1].name.endswith("_k2")

    def test_kernel_lookup(self):
        prog = compile_source(SRC, BASE)
        name = prog.kernels[0].name
        assert prog.kernel(name) is prog.kernels[0]
        with pytest.raises(KeyError):
            prog.kernel("nope")

    def test_base_has_no_sr_reports(self):
        prog = compile_source(SRC, BASE)
        assert prog.kernels[0].safara is None
        assert prog.kernels[0].carr_kennedy is None

    def test_licm_runs_in_every_config(self):
        prog = compile_source(SRC, BASE)
        assert prog.kernels[0].licm is not None

    def test_safara_config_records_report(self):
        prog = compile_source(SRC, SAFARA_ONLY)
        assert prog.kernels[0].safara is not None
        assert prog.kernels[0].backend_compilations >= 2

    def test_carr_kennedy_config(self):
        prog = compile_source(SRC, CARR_KENNEDY)
        assert prog.kernels[0].carr_kennedy is not None

    def test_clauses_reduce_registers(self):
        base = compile_source(SRC, BASE)
        dim = compile_source(SRC, SMALL_DIM)
        assert dim.kernels[0].registers < base.kernels[0].registers

    def test_fresh_parse_isolation(self):
        """Two compilations of the same source must not interfere."""
        a = compile_source(SRC, SMALL_DIM_SAFARA)
        b = compile_source(SRC, SMALL_DIM_SAFARA)
        assert [k.registers for k in a.kernels] == [k.registers for k in b.kernels]

    def test_arch_override(self):
        cfg = SMALL_DIM_SAFARA.with_arch(FERMI_LIKE)
        prog = compile_source(SRC, cfg)
        assert all(
            k.registers <= FERMI_LIKE.max_registers_per_thread for k in prog.kernels
        )


class TestTiming:
    def test_total_is_sum_of_kernels(self):
        prog = compile_source(SRC, BASE)
        t = time_program(prog, ENV)
        assert t.total_ms == pytest.approx(sum(k.time_ms for k in t.kernels))

    def test_launch_list_weights_kernels(self):
        prog = compile_source(SRC, BASE)
        t1 = time_program(prog, ENV, launches=[1, 1])
        t2 = time_program(prog, ENV, launches=[10, 1])
        assert t2.kernels[0].time_ms == pytest.approx(10 * t1.kernels[0].time_ms)
        assert t2.kernels[1].time_ms == pytest.approx(t1.kernels[1].time_ms)

    def test_launch_dict_by_name(self):
        prog = compile_source(SRC, BASE)
        name = prog.kernels[0].name
        t = time_program(prog, ENV, launches={name: 5})
        t1 = time_program(prog, ENV, launches=1)
        assert t.kernels[0].time_ms == pytest.approx(5 * t1.kernels[0].time_ms)

    def test_pgi_issue_efficiency_applied(self):
        base_prog = compile_source(SRC, BASE)
        pgi_prog = compile_source(SRC, PGI)
        tb = time_program(base_prog, ENV)
        tp = time_program(pgi_prog, ENV)
        # PGI's compute bound is scaled by its efficiency factor.
        assert (
            tp.kernels[1].compute_cycles
            < tb.kernels[1].compute_cycles
        )


class TestConfigs:
    def test_all_configs_registry(self):
        assert "PGI" in ALL_CONFIGS
        assert ALL_CONFIGS["OpenUH(base)"] is BASE

    def test_codegen_options_respect_flags(self):
        opts = SMALL.codegen_options()
        assert opts.honor_small and not opts.honor_dim
        opts = SMALL_DIM.codegen_options()
        assert opts.honor_small and opts.honor_dim

    def test_pgi_is_intra_only(self):
        assert PGI.ck_intra_only
        assert PGI.issue_efficiency < 1.0

    def test_configs_are_frozen(self):
        with pytest.raises(Exception):
            BASE.safara = True
