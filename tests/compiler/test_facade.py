"""The stable public facade (`import repro`) and the legacy-shim
deprecation contract: each shim warns exactly once per process."""

import warnings

import pytest

import repro
from repro._compat import reset_legacy_warnings
from repro.compiler import BASE

SRC = """
kernel axpy(const double x[1:n], double y[1:n], int n) {
  #pragma acc kernels loop gang vector(64)
  for (i = 1; i < n; i++) {
    y[i] = x[i] + y[i];
  }
}
"""


class TestFacadeSurface:
    def test_all_is_the_stable_api(self):
        assert repro.__all__ == [
            "CompilerConfig", "CompilerSession", "compile",
            "get_arch", "get_pass", "list_archs", "list_passes",
            "register_pass", "run", "tune",
        ]
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_arch_facade_resolves_registered_profiles(self):
        from repro.gpu import KEPLER_K20XM

        assert "kepler-k20xm" in repro.list_archs()
        assert repro.get_arch("kepler-k20xm") is KEPLER_K20XM
        assert repro.get_arch("cdna2-mi250").warp_size == 64

    def test_compile_compiles(self):
        program = repro.compile(SRC)
        assert program.kernels[0].registers > 0

    def test_compile_accepts_config_and_env(self):
        program = repro.compile(SRC, BASE, env={"n": 64})
        assert program.config is BASE

    def test_run_executes(self):
        import numpy as np

        x = np.arange(8, dtype=np.float64)
        y = np.ones(8, dtype=np.float64)
        repro.run(SRC, {"x": x, "y": y, "n": 8})
        assert y[1] == 2.0

    def test_tune_is_reachable_from_the_facade(self):
        from repro.tune import tune as tune_fn

        assert repro.tune is tune_fn

    def test_facade_itself_never_warns(self):
        reset_legacy_warnings()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            repro.compile(SRC)


class TestDeprecationOnce:
    def _call(self, name):
        from repro.compiler import (
            compile_function,
            compile_guarded,
            compile_source,
            time_program,
        )
        from repro.feedback import optimize_region
        from repro.ir import build_module
        from repro.lang import parse_program

        if name == "compile_source":
            compile_source(SRC, BASE)
        elif name == "compile_guarded":
            fn = build_module(parse_program(SRC, "<test>")).functions[0]
            compile_guarded(fn.regions()[0], fn.symtab)
        elif name == "compile_function":
            fn = build_module(parse_program(SRC, "<test>")).functions[0]
            compile_function(fn, BASE)
        elif name == "time_program":
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                program = compile_source(SRC, BASE)
            time_program(program, {"n": 64})
        elif name == "optimize_region":
            fn = build_module(parse_program(SRC, "<test>")).functions[0]
            optimize_region(fn.regions()[0], fn.symtab)
        else:  # pragma: no cover
            raise AssertionError(name)

    @pytest.mark.parametrize(
        "shim",
        ["compile_source", "compile_function", "compile_guarded",
         "time_program", "optimize_region"],
    )
    def test_each_shim_warns_exactly_once(self, shim):
        reset_legacy_warnings()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            self._call(shim)
            self._call(shim)
        hits = [
            w for w in caught
            if issubclass(w.category, DeprecationWarning)
            and f"{shim}()" in str(w.message)
        ]
        assert len(hits) == 1, f"{shim} warned {len(hits)} times"
        assert "deprecated shim" in str(hits[0].message)
        assert "repro facade" in str(hits[0].message)

    def test_warnings_are_per_shim_not_global(self):
        reset_legacy_warnings()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            self._call("compile_source")
            self._call("compile_guarded")
        messages = [
            str(w.message) for w in caught
            if issubclass(w.category, DeprecationWarning)
        ]
        assert any("compile_source()" in m for m in messages)
        assert any("compile_guarded()" in m for m in messages)
