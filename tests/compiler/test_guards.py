"""Tests for the runtime clause-verification scheme (paper Section IV)."""

import pytest

from repro.compiler import compile_guarded, verify_clauses
from repro.ir import build_module
from repro.lang import parse_program

SRC = """
kernel k(const double u[1:nz][1:ny][1:nx], const double v[1:mz][1:my][1:mx],
         double out[1:nz][1:ny][1:nx],
         int nx, int ny, int nz, int mx, int my, int mz) {
  #pragma acc kernels loop gang vector(64) \\
      dim((1:nz, 1:ny, 1:nx)(u, v, out)) small(u, v, out)
  for (i = 1; i < nx; i++) {
    out[1][1][i] = u[1][1][i] + v[1][1][i];
  }
}
"""


def region_of(src=SRC):
    fn = build_module(parse_program(src)).functions[0]
    return fn.regions()[0], fn.symtab


GOOD_ENV = {"nx": 64, "ny": 32, "nz": 16, "mx": 64, "my": 32, "mz": 16}
BAD_DIM_ENV = {"nx": 64, "ny": 32, "nz": 16, "mx": 64, "my": 32, "mz": 8}
#: u alone is 8 bytes * 2^30 = 8 GB: small lie.
BAD_SMALL_ENV = {
    "nx": 1 << 10, "ny": 1 << 10, "nz": 1 << 10,
    "mx": 1 << 10, "my": 1 << 10, "mz": 1 << 10,
}


class TestVerifyClauses:
    def test_truthful_clauses_verify(self):
        region, symtab = region_of()
        assert verify_clauses(region, symtab, GOOD_ENV).ok

    def test_dim_lie_detected(self):
        region, symtab = region_of()
        verdict = verify_clauses(region, symtab, BAD_DIM_ENV)
        assert not verdict.ok
        assert any(v.clause == "dim" for v in verdict.violations)
        assert "v" in str(verdict.violations[0])

    def test_small_lie_detected(self):
        region, symtab = region_of()
        verdict = verify_clauses(region, symtab, BAD_SMALL_ENV)
        assert any(v.clause == "small" for v in verdict.violations)

    def test_declared_clause_bounds_checked(self):
        src = SRC.replace("dim((1:nz, 1:ny, 1:nx)", "dim((0:nz, 1:ny, 1:nx)")
        region, symtab = region_of(src)
        verdict = verify_clauses(region, symtab, GOOD_ENV)
        assert any("declares bounds" in v.message for v in verdict.violations)

    def test_missing_runtime_size_raises(self):
        region, symtab = region_of()
        with pytest.raises(KeyError, match="missing"):
            verify_clauses(region, symtab, {"nx": 4})


class TestGuardedCompilation:
    def test_two_versions_generated(self):
        region, symtab = region_of()
        guarded = compile_guarded(region, symtab, name="g")
        assert guarded.optimized.name == "g_opt"
        assert guarded.fallback.name == "g_fallback"
        # The optimized version uses strictly fewer registers.
        assert guarded.optimized_info.registers < guarded.fallback_info.registers

    def test_select_optimized_when_truthful(self):
        region, symtab = region_of()
        guarded = compile_guarded(region, symtab)
        kernel, info, verdict = guarded.select(GOOD_ENV)
        assert verdict.ok
        assert kernel is guarded.optimized

    def test_select_fallback_when_lying(self):
        region, symtab = region_of()
        guarded = compile_guarded(region, symtab)
        kernel, info, verdict = guarded.select(BAD_DIM_ENV)
        assert not verdict.ok
        assert kernel is guarded.fallback
        assert info is guarded.fallback_info

    def test_fallback_ignores_clauses_entirely(self):
        from repro.codegen import Op

        region, symtab = region_of()
        guarded = compile_guarded(region, symtab)
        # Fallback: per-array dope sets (3 arrays x 5) vs shared set (5).
        assert guarded.fallback.count(Op.LD_DOPE) == 15
        assert guarded.optimized.count(Op.LD_DOPE) == 5
