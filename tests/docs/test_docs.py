"""Documentation lint: the docs set stays complete and navigable.

Three invariants, cheap enough to gate CI:

* every CLI subcommand is documented somewhere under ``docs/`` or the
  top-level ``README.md`` (a new subcommand without docs fails here);
* every page in ``docs/`` is reachable from the ``docs/README.md``
  index (no orphaned documentation);
* every relative intra-repo markdown link resolves to a real file.
"""

import re
from pathlib import Path

import pytest

from repro.cli import build_parser

REPO = Path(__file__).resolve().parents[2]
DOCS = REPO / "docs"

#: ``[text](target)`` — good enough for this repo's plain markdown
#: (no reference-style links, no angle-bracket targets in use).
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Top-level documents that participate in the link graph.
TOP_LEVEL = ["README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md"]


def doc_pages() -> list[Path]:
    pages = sorted(DOCS.glob("*.md"))
    assert pages, "docs/ contains no markdown pages?"
    return pages


def all_documents() -> list[Path]:
    return doc_pages() + [REPO / name for name in TOP_LEVEL if (REPO / name).exists()]


def links_of(page: Path) -> list[str]:
    return LINK_RE.findall(page.read_text())


def is_relative(target: str) -> bool:
    return not target.startswith(("http://", "https://", "mailto:", "#"))


class TestCliCoverage:
    def test_every_subcommand_is_documented(self):
        parser = build_parser()
        (sub,) = parser._subparsers._group_actions
        subcommands = sorted(sub.choices)
        assert subcommands, "CLI has no subcommands?"
        corpus = "\n".join(p.read_text() for p in all_documents())
        undocumented = [
            name
            for name in subcommands
            if not re.search(rf"\brepro {name}\b|`{name}`", corpus)
        ]
        assert not undocumented, (
            f"CLI subcommands missing from docs/ and README.md: "
            f"{undocumented} (document them, e.g. 'python -m repro <name>')"
        )


class TestIndexCoverage:
    def test_index_exists(self):
        assert (DOCS / "README.md").is_file(), "docs/README.md index is missing"

    def test_every_page_is_reachable_from_the_index(self):
        index = DOCS / "README.md"
        linked = {
            (DOCS / target.split("#")[0]).resolve()
            for target in links_of(index)
            if is_relative(target)
        }
        orphans = [
            page.name
            for page in doc_pages()
            if page != index and page.resolve() not in linked
        ]
        assert not orphans, (
            f"docs pages not linked from docs/README.md: {orphans}"
        )

    def test_readme_links_the_docs(self):
        readme = (REPO / "README.md").read_text()
        assert "docs/architecture.md" in readme
        assert "docs/README.md" in readme


class TestLinkIntegrity:
    @pytest.mark.parametrize(
        "page", all_documents(), ids=lambda p: str(p.relative_to(REPO))
    )
    def test_relative_links_resolve(self, page: Path):
        broken = []
        for target in links_of(page):
            if not is_relative(target):
                continue
            path = target.split("#")[0]
            if not path:  # pure-fragment link within the page
                continue
            resolved = (page.parent / path).resolve()
            if not resolved.exists():
                broken.append(target)
            elif REPO not in resolved.parents and resolved != REPO:
                broken.append(f"{target} (escapes the repository)")
        assert not broken, f"broken links in {page.name}: {broken}"
