"""Documentation lint: the docs set stays complete and navigable.

Five invariants, cheap enough to gate CI:

* every CLI subcommand is documented somewhere under ``docs/`` or the
  top-level ``README.md`` (a new subcommand without docs fails here);
* every page in ``docs/`` is reachable from the ``docs/README.md``
  index (no orphaned documentation);
* every relative intra-repo markdown link resolves to a real file;
* every serve-protocol error code is documented in ``docs/serving.md``
  (a new wire code without client-facing docs fails here);
* every metric name the observability docs cite belongs to a registered
  :data:`~repro.obs.metrics.METRIC_FAMILIES` family (stale or
  misspelled metric references fail here).
"""

import re
from pathlib import Path

import pytest

from repro.cli import build_parser
from repro.obs.metrics import METRIC_FAMILIES
from repro.serve import protocol

REPO = Path(__file__).resolve().parents[2]
DOCS = REPO / "docs"

#: ``[text](target)`` — good enough for this repo's plain markdown
#: (no reference-style links, no angle-bracket targets in use).
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Top-level documents that participate in the link graph.
TOP_LEVEL = ["README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md"]


def doc_pages() -> list[Path]:
    pages = sorted(DOCS.glob("*.md"))
    assert pages, "docs/ contains no markdown pages?"
    return pages


def all_documents() -> list[Path]:
    return doc_pages() + [REPO / name for name in TOP_LEVEL if (REPO / name).exists()]


def links_of(page: Path) -> list[str]:
    return LINK_RE.findall(page.read_text())


def is_relative(target: str) -> bool:
    return not target.startswith(("http://", "https://", "mailto:", "#"))


class TestCliCoverage:
    def test_every_subcommand_is_documented(self):
        parser = build_parser()
        (sub,) = parser._subparsers._group_actions
        subcommands = sorted(sub.choices)
        assert subcommands, "CLI has no subcommands?"
        corpus = "\n".join(p.read_text() for p in all_documents())
        undocumented = [
            name
            for name in subcommands
            if not re.search(rf"\brepro {name}\b|`{name}`", corpus)
        ]
        assert not undocumented, (
            f"CLI subcommands missing from docs/ and README.md: "
            f"{undocumented} (document them, e.g. 'python -m repro <name>')"
        )


class TestErrorCodeCoverage:
    def test_every_protocol_error_code_is_documented(self):
        # The module's uppercase string constants are exactly the wire
        # codes (ops, limits and code sets are non-string constants).
        codes = sorted(
            value
            for name, value in vars(protocol).items()
            if name.isupper() and isinstance(value, str)
        )
        assert len(codes) >= 13, "protocol error codes went missing?"
        serving = (DOCS / "serving.md").read_text()
        undocumented = [c for c in codes if f"`{c}`" not in serving]
        assert not undocumented, (
            f"serve protocol error codes missing from docs/serving.md: "
            f"{undocumented}"
        )


#: Dotted backticked tokens in the observability docs that are *not*
#: metric names: span names and stdlib/module references.
NON_METRIC_TOKENS = {
    "compile.function",
    "queue.wait",
    "vector.plan",
    "safara.iteration",
}
NON_METRIC_PREFIXES = ("repro", "np", "os", "concurrent", "config")
METRIC_TOKEN_RE = re.compile(r"`([a-z_]+(?:\.[a-z_0-9]+)+)`")


class TestMetricFamilyCoverage:
    """The observability-facing pages only cite metrics whose family is
    registered — so ``repro stats`` sections and the docs agree."""

    PAGES = ("observability.md", "sharding.md", "serving.md")

    def metric_tokens(self) -> set[str]:
        tokens: set[str] = set()
        for name in self.PAGES:
            page = DOCS / name
            if not page.exists():
                continue
            for token in METRIC_TOKEN_RE.findall(page.read_text()):
                if token in NON_METRIC_TOKENS:
                    continue
                if token.split(".", 1)[0] in NON_METRIC_PREFIXES:
                    continue
                if token.endswith((".py", ".md", ".json", ".sock")):
                    continue
                tokens.add(token)
        return tokens

    def test_cited_metrics_belong_to_registered_families(self):
        families = {key for key, _ in METRIC_FAMILIES}
        tokens = self.metric_tokens()
        assert tokens, "observability docs cite no metrics at all?"
        strays = sorted(
            t for t in tokens if t.split(".", 1)[0] not in families
        )
        assert not strays, (
            f"docs cite metrics outside METRIC_FAMILIES: {strays} "
            f"(register the family or fix the name)"
        )

    def test_every_family_is_documented(self):
        corpus = "\n".join(
            (DOCS / name).read_text()
            for name in self.PAGES
            if (DOCS / name).exists()
        )
        missing = [
            key for key, _ in METRIC_FAMILIES if f"`{key}." not in corpus
        ]
        assert not missing, (
            f"metric families with no documented metric: {missing}"
        )


class TestIndexCoverage:
    def test_index_exists(self):
        assert (DOCS / "README.md").is_file(), "docs/README.md index is missing"

    def test_every_page_is_reachable_from_the_index(self):
        index = DOCS / "README.md"
        linked = {
            (DOCS / target.split("#")[0]).resolve()
            for target in links_of(index)
            if is_relative(target)
        }
        orphans = [
            page.name
            for page in doc_pages()
            if page != index and page.resolve() not in linked
        ]
        assert not orphans, (
            f"docs pages not linked from docs/README.md: {orphans}"
        )

    def test_readme_links_the_docs(self):
        readme = (REPO / "README.md").read_text()
        assert "docs/architecture.md" in readme
        assert "docs/README.md" in readme


class TestLinkIntegrity:
    @pytest.mark.parametrize(
        "page", all_documents(), ids=lambda p: str(p.relative_to(REPO))
    )
    def test_relative_links_resolve(self, page: Path):
        broken = []
        for target in links_of(page):
            if not is_relative(target):
                continue
            path = target.split("#")[0]
            if not path:  # pure-fragment link within the page
                continue
            resolved = (page.parent / path).resolve()
            if not resolved.exists():
                broken.append(target)
            elif REPO not in resolved.parents and resolved != REPO:
                broken.append(f"{target} (escapes the repository)")
        assert not broken, f"broken links in {page.name}: {broken}"
