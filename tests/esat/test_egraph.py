"""E-graph mechanics: hash-consing, union-find, congruence closure,
typing, and the determinism/bounding contracts of saturation."""

import pytest

from repro.esat.egraph import EGraph, ENode
from repro.esat.rules import default_rules
from repro.ir import BinOp, IntConst, VarRef
from repro.ir.expr import Call, FloatConst
from repro.ir.symbols import Symbol, SymbolKind
from repro.ir.types import BOOL, F64, I32

X = Symbol(name="x", stype=F64, kind=SymbolKind.PARAM)
Y = Symbol(name="y", stype=F64, kind=SymbolKind.PARAM)
I = Symbol(name="i", stype=I32, kind=SymbolKind.LOOPVAR)


class TestHashCons:
    def test_same_expression_lands_in_same_class(self):
        eg = EGraph()
        a = eg.add(BinOp("+", VarRef(X), VarRef(Y)))
        b = eg.add(BinOp("+", VarRef(X), VarRef(Y)))
        assert a == b
        assert eg.n_nodes == 3  # x, y, x+y — no duplicates

    def test_distinct_expressions_get_distinct_classes(self):
        eg = EGraph()
        a = eg.add(BinOp("+", VarRef(X), VarRef(Y)))
        b = eg.add(BinOp("*", VarRef(X), VarRef(Y)))
        assert eg.find(a) != eg.find(b)

    def test_shared_subtrees_are_shared_classes(self):
        eg = EGraph()
        cx = eg.add(VarRef(X))
        c = eg.add(BinOp("+", VarRef(X), VarRef(X)))
        node = eg.classes[eg.find(c)].nodes[0]
        assert node.children == (cx, cx)

    def test_repeated_spelling_counts_once(self):
        eg = EGraph()
        eg.add(BinOp("+", VarRef(X), VarRef(Y)))
        cid = eg.add(BinOp("+", VarRef(X), VarRef(Y)))
        assert eg.classes[eg.find(cid)].source_spellings == 1


class TestUnionFind:
    def test_union_keeps_smaller_id_as_representative(self):
        eg = EGraph()
        a = eg.add(VarRef(X))
        b = eg.add(VarRef(Y))
        root = eg.union(b, a)
        assert root == min(a, b)
        assert eg.find(a) == eg.find(b) == root

    def test_union_merges_node_lists_and_spellings(self):
        eg = EGraph()
        a = eg.add(VarRef(X))
        b = eg.add(VarRef(Y))
        root = eg.union(a, b)
        cls = eg.classes[root]
        assert len(cls.nodes) == 2
        assert cls.source_spellings == 2

    def test_self_union_is_a_no_op(self):
        eg = EGraph()
        a = eg.add(VarRef(X))
        before = eg.stats.unions
        assert eg.union(a, a) == eg.find(a)
        assert eg.stats.unions == before

    def test_merged_class_disappears_from_classes(self):
        eg = EGraph()
        a = eg.add(VarRef(X))
        b = eg.add(VarRef(Y))
        eg.union(a, b)
        assert len(eg.classes) == 1


class TestCongruence:
    def test_rebuild_merges_congruent_parents(self):
        """f(a) and f(b) become one class after union(a, b) + rebuild."""
        eg = EGraph()
        a = eg.add(VarRef(X))
        b = eg.add(VarRef(Y))
        fa = eg.add(Call("sqrt", (VarRef(X),)))
        fb = eg.add(Call("sqrt", (VarRef(Y),)))
        assert eg.find(fa) != eg.find(fb)
        eg.union(a, b)
        eg.rebuild()
        assert eg.find(fa) == eg.find(fb)

    def test_congruence_cascades(self):
        """g(f(a)) = g(f(b)) needs two congruence steps."""
        eg = EGraph()
        a = eg.add(VarRef(X))
        b = eg.add(VarRef(Y))
        gfa = eg.add(Call("exp", (Call("sqrt", (VarRef(X),)),)))
        gfb = eg.add(Call("exp", (Call("sqrt", (VarRef(Y),)),)))
        eg.union(a, b)
        eg.rebuild()
        assert eg.find(gfa) == eg.find(gfb)


class TestTyping:
    def test_int_plus_float_promotes(self):
        eg = EGraph()
        c = eg.add(BinOp("+", VarRef(I), VarRef(X)))
        assert eg.stype(c) is F64

    def test_relational_is_bool(self):
        eg = EGraph()
        c = eg.add(BinOp("<", VarRef(I), IntConst(4)))
        assert eg.stype(c) is BOOL

    def test_int_only_subtree_stays_int(self):
        eg = EGraph()
        c = eg.add(BinOp("*", VarRef(I), IntConst(4)))
        assert eg.stype(c) is I32


class TestSaturationBounds:
    def test_fixpoint_sets_saturated_flag(self):
        eg = EGraph()
        eg.add(BinOp("+", VarRef(X), VarRef(Y)))
        stats = eg.saturate(default_rules())
        assert stats.saturated
        assert stats.iterations >= 1

    def test_node_limit_bounds_growth(self):
        eg = EGraph(node_limit=4)
        eg.add(BinOp("+", BinOp("+", VarRef(I), IntConst(1)), IntConst(2)))
        eg.saturate(default_rules())
        # The sweep stops adding once at the cap; one in-flight rule
        # application may overshoot by a constant.
        assert eg.n_nodes <= 4 + 4

    def test_iter_limit_bounds_sweeps(self):
        eg = EGraph(iter_limit=2)
        eg.add(BinOp("+", BinOp("+", VarRef(I), IntConst(1)), IntConst(2)))
        stats = eg.saturate(default_rules())
        assert stats.iterations <= 2

    def test_same_input_same_stats(self):
        def run():
            eg = EGraph()
            eg.add(BinOp("*", BinOp("+", VarRef(I), IntConst(0)), IntConst(2)))
            eg.add(FloatConst(2.0))
            s = eg.saturate(default_rules())
            return (s.nodes, s.classes, s.unions, s.iterations, s.saturated,
                    sorted(eg.classes))

        assert run() == run()

    def test_unified_classes_counts_multi_spelling_classes(self):
        eg = EGraph()
        a = eg.add(BinOp("+", VarRef(X), VarRef(Y)))
        b = eg.add(BinOp("+", VarRef(Y), VarRef(X)))
        assert eg.find(a) != eg.find(b)
        eg.saturate(default_rules())
        assert eg.find(a) == eg.find(b)
        assert eg.unified_classes() == 1

    def test_add_rejects_unknown_objects(self):
        with pytest.raises(TypeError):
            EGraph().add("not an expression")  # type: ignore[arg-type]

    def test_canonicalize_rewrites_children_to_roots(self):
        eg = EGraph()
        a = eg.add(VarRef(X))
        b = eg.add(VarRef(Y))
        node = ENode("bin", ("+",), (b,))
        eg.union(a, b)
        assert eg.canonicalize(node).children == (eg.find(b),)
