"""Extraction: the configurable-weight cost model, its validation, the
shared-subtree costing that makes strength reduction land, and the
source-spelling tie-break that makes extraction the identity when no
rewrite wins."""

import pytest

from repro.errors import ConfigError
from repro.esat.egraph import EGraph
from repro.esat.extract import (
    DEFAULT_WEIGHTS,
    WEIGHT_KEYS,
    Extractor,
    validate_weights,
)
from repro.esat.rules import default_rules
from repro.ir import BinOp, IntConst, VarRef
from repro.ir.expr import ArrayRef, FloatConst
from repro.ir.symbols import ArrayInfo, Dim, Symbol, SymbolKind
from repro.ir.types import F64, I32

X = Symbol(name="x", stype=F64, kind=SymbolKind.PARAM)
I = Symbol(name="i", stype=I32, kind=SymbolKind.LOOPVAR)
N = Symbol(name="n", stype=I32, kind=SymbolKind.PARAM)
A = Symbol(
    name="a",
    stype=F64,
    kind=SymbolKind.PARAM,
    array=ArrayInfo(elem=F64, dims=(Dim(extent=N, lower=0),)),
)


def extract(expr, weights=None):
    """Saturate one expression with the default rules and extract it."""
    eg = EGraph()
    cid = eg.add(expr)
    eg.saturate(default_rules())
    return Extractor(eg, weights).expr_of(cid)


class TestValidateWeights:
    def test_empty_yields_defaults(self):
        assert validate_weights({}) == DEFAULT_WEIGHTS

    def test_overrides_merge_over_defaults(self):
        merged = validate_weights({"div": 2.0})
        assert merged["div"] == 2.0
        assert merged["load"] == DEFAULT_WEIGHTS["load"]

    def test_unknown_key_rejected_with_valid_list(self):
        with pytest.raises(ConfigError, match="unknown extraction weight"):
            validate_weights({"sqrt": 1.0})

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("inf"), float("nan")])
    def test_non_positive_or_non_finite_rejected(self, bad):
        with pytest.raises(ConfigError, match="positive finite"):
            validate_weights({"alu": bad})

    def test_every_default_key_is_a_weight_key(self):
        assert set(DEFAULT_WEIGHTS) == set(WEIGHT_KEYS)


class TestCostModel:
    def test_identity_when_nothing_improves(self):
        """A class the rules never improved extracts its own spelling."""
        e = BinOp("-", VarRef(X), FloatConst(0.5))
        assert extract(e) == e

    def test_div_pow2_extracts_as_mul(self):
        """div weighs 8, mul 1.5 + const 0.5: x * 0.5 wins over x / 2.0."""
        got = extract(BinOp("/", VarRef(X), FloatConst(2.0)))
        assert got == BinOp("*", VarRef(X), FloatConst(0.5))

    def test_weights_can_flip_the_choice(self):
        """With division cheap and multiplication dear, the source
        division survives — the tuner's extraction-weight axis."""
        e = BinOp("/", VarRef(X), FloatConst(2.0))
        assert extract(e, {"div": 0.9, "mul": 5.0}) == e

    def test_shared_subtree_counts_once(self):
        """2 * A[i] extracts as A[i] + A[i]: the duplicated load costs
        one class, so the add (1.0) beats mul + const (2.0) — and the
        second occurrence is the new scalar-replacement candidate."""
        load = ArrayRef(A, (VarRef(I),))
        got = extract(BinOp("*", load, FloatConst(2.0)))
        assert got == BinOp("+", load, load)

    def test_subscript_cancellation_extracts_plain_index(self):
        """A[(i * 4) / 4] extracts as A[i]."""
        obfuscated = ArrayRef(
            A, (BinOp("/", BinOp("*", VarRef(I), IntConst(4)), IntConst(4)),)
        )
        assert extract(obfuscated) == ArrayRef(A, (VarRef(I),))

    def test_constant_folding_extracts_the_constant(self):
        got = extract(BinOp("+", IntConst(3), BinOp("*", IntConst(2),
                                                    IntConst(5))))
        assert got == IntConst(13)

    def test_cost_of_is_finite_for_every_class(self):
        eg = EGraph()
        cid = eg.add(BinOp("/", ArrayRef(A, (VarRef(I),)), FloatConst(2.0)))
        eg.saturate(default_rules())
        ex = Extractor(eg)
        for cls_id in eg.classes:
            assert ex.cost_of(cls_id) < float("inf")

    def test_extraction_is_deterministic(self):
        e = BinOp("*", BinOp("+", VarRef(I), IntConst(0)), IntConst(2))
        assert extract(e) == extract(e)

    def test_extracted_exprs_are_interned(self):
        """Two extractions of equal trees return the same interned
        object — the property downstream structural passes rely on."""
        a = extract(BinOp("/", VarRef(X), FloatConst(2.0)))
        b = extract(BinOp("/", VarRef(X), FloatConst(2.0)))
        assert a is b
