"""``saturate_region``: slot coverage, in-place rewriting, the report,
the store-target shape guard, and the loop-bounds hands-off rule."""

from repro.esat import EsatReport, saturate_region
from repro.ir import BinOp, build_module
from repro.ir.expr import ArrayRef, FloatConst
from repro.ir.printer import Printer, format_expr
from repro.ir.stmt import Assign, If, LocalDecl, Loop
from repro.lang import parse_program

SRC = """
kernel k(double a[0:n], const double b[0:n], int n) {
  #pragma acc kernels loop gang vector(64)
  for (i = 0; i < n; i++) {
    a[i] = b[i] * 2.0 + b[(i * 4) / 4] / 2.0;
  }
}
"""


def region_of(src):
    fn = build_module(parse_program(src)).functions[0]
    return fn, fn.regions()[0]


def find_stmts(region, cls):
    out = []
    stack = list(region.body)
    while stack:
        stmt = stack.pop(0)
        if isinstance(stmt, cls):
            out.append(stmt)
        stack.extend(getattr(stmt, "body", []))
        stack.extend(getattr(stmt, "then_body", []))
        stack.extend(getattr(stmt, "else_body", []))
    return out


class TestSaturateRegion:
    def test_rewrites_in_place_and_reports(self):
        _, region = region_of(SRC)
        report = saturate_region(region)
        assert isinstance(report, EsatReport)
        assert report.exprs >= 1
        assert report.rewritten >= 1
        assert report.unions >= 1
        assert report.saturated
        (assign,) = find_stmts(region, Assign)
        text = format_expr(assign.value)
        # x*2 became a self-add, the obfuscated subscript collapsed to
        # b[i], and /2.0 became *0.5 — one spelling of b[i], three uses.
        assert text.count("b[i]") == 3
        assert "/ 2.0" not in text and "* 2.0" not in text

    def test_new_candidates_counts_newly_repeated_refs(self):
        """b[i] occurs once before saturation and three times after:
        one newly repeated reference for SAFARA to group."""
        _, region = region_of(SRC)
        report = saturate_region(region)
        assert report.new_candidates == 1

    def test_applied_defaults_true_until_the_guard_decides(self):
        _, region = region_of(SRC)
        assert saturate_region(region).applied is True

    def test_loop_bounds_left_untouched(self):
        """Bounds shape the launch topology, not per-thread work — the
        saturator must not respell them."""
        src = SRC.replace("i < n;", "i < n * 1;")
        _, region = region_of(src)
        saturate_region(region)
        loops = find_stmts(region, Loop)
        bound = next(l.bound for l in loops if l.var.name == "i")
        assert isinstance(bound, BinOp)  # still ``n * 1``, not ``n``
        assert format_expr(bound) == "n * 1"

    def test_store_target_keeps_symbol_and_shape(self):
        src = """
kernel k(double a[0:n], const double b[0:n], int n) {
  #pragma acc kernels loop gang vector(64)
  for (i = 0; i < n; i++) {
    a[(i * 4) / 4] = b[i];
  }
}
"""
        _, region = region_of(src)
        saturate_region(region)
        (assign,) = find_stmts(region, Assign)
        assert isinstance(assign.target, ArrayRef)
        assert assign.target.sym.name == "a"
        # The subscript itself may canonicalize: (i*4)/4 -> i.
        assert format_expr(assign.target) == "a[i]"

    def test_branch_conditions_and_decl_inits_are_slots(self):
        src = """
kernel k(double a[0:n], const double b[0:n], int n) {
  #pragma acc kernels loop gang vector(64)
  for (i = 0; i < n; i++) {
    double t = b[i] / 2.0;
    if (b[i] / 2.0 > 0.5) { a[i] = t; } else { a[i] = 0.0 - t; }
  }
}
"""
        _, region = region_of(src)
        report = saturate_region(region)
        (decl,) = find_stmts(region, LocalDecl)
        (cond,) = [s.cond for s in find_stmts(region, If)]
        assert format_expr(decl.init) == "b[i] * 0.5"
        assert "* 0.5" in format_expr(cond)
        assert report.rewritten >= 2

    def test_empty_region_is_a_no_op(self):
        src = """
kernel k(double a[0:n], int n) {
  #pragma acc kernels loop gang vector(64)
  for (i = 0; i < n; i++) {
    a[i] = 1.0;
  }
}
"""
        _, region = region_of(src)
        report = saturate_region(region)
        assert report.rewritten == 0
        assert report.new_candidates == 0

    def test_same_source_saturates_identically(self):
        def run():
            fn, region = region_of(SRC)
            report = saturate_region(region)
            return Printer().print_function(fn), (
                report.exprs, report.nodes, report.classes, report.unions,
                report.iterations, report.saturated,
                report.unified_spellings, report.rewritten,
                report.new_candidates,
            )

        assert run() == run()

    def test_custom_weights_steer_extraction(self):
        src = """
kernel k(double a[0:n], const double b[0:n], int n) {
  #pragma acc kernels loop gang vector(64)
  for (i = 0; i < n; i++) {
    a[i] = b[i] / 2.0;
  }
}
"""
        _, cheap_div = region_of(src)
        saturate_region(cheap_div, weights={"div": 0.9, "mul": 5.0})
        (assign,) = find_stmts(cheap_div, Assign)
        assert format_expr(assign.value) == "b[i] / 2.0"

        _, default = region_of(src)
        saturate_region(default)
        (assign,) = find_stmts(default, Assign)
        assert format_expr(assign.value) == "b[i] * 0.5"
