"""The session's dual-compile pressure guard: ``--saturate`` compiles each
region both ways and ships the saturated kernel only when it is never
worse — no more registers, spills, or model cycles than the base kernel."""

import numpy as np

from repro.compiler import BASE, CompilerSession
from repro.compiler.session import CompilerSession as _Session
from repro.gpu.interpreter import run_kernel
from repro.ir import build_module
from repro.lang import parse_program

SRC = """
kernel scale(double a[0:n], const double b[0:n], int n) {
  #pragma acc kernels loop gang vector(64)
  for (i = 0; i < n; i++) {
    a[i] = b[i] * 2.0 + b[(i * 4) / 4] / 2.0;
  }
}
"""

SAT = BASE.derive(name="base+sat", saturate=True)


class TestGuardedCompile:
    def test_saturated_never_worse_in_registers(self):
        session = CompilerSession()
        base = session.compile_source(SRC, BASE)
        sat = session.compile_source(SRC, SAT)
        for bk, sk in zip(base.kernels, sat.kernels):
            assert sk.ptxas.registers <= bk.ptxas.registers
            assert sk.ptxas.spill_bytes <= bk.ptxas.spill_bytes

    def test_esat_report_attached_and_applied(self):
        program = CompilerSession().compile_source(SRC, SAT)
        (kernel,) = program.kernels
        assert kernel.esat is not None
        assert kernel.esat.rewritten >= 1
        assert kernel.esat.applied is True

    def test_discarded_compile_is_still_charged(self):
        """The guard lowers each region twice; the discarded
        alternative's backend invocations still count."""
        sat = CompilerSession().compile_source(SRC, SAT)
        base = CompilerSession().compile_source(SRC, BASE)
        assert (
            sat.kernels[0].backend_compilations
            == 2 * base.kernels[0].backend_compilations
        )

    def test_unsaturated_config_has_no_esat_report(self):
        program = CompilerSession().compile_source(SRC, BASE)
        assert program.kernels[0].esat is None

    def test_guard_fallback_keeps_base_kernel(self, monkeypatch):
        """Force the verdict to 'worse': the base kernel ships, the
        report says so, and the fallback counter ticks."""
        monkeypatch.setattr(
            _Session, "_never_worse", staticmethod(lambda sat, base, arch: False)
        )
        session = CompilerSession()
        sat = session.compile_source(SRC, SAT)
        base = CompilerSession().compile_source(SRC, BASE)
        (sk,), (bk,) = sat.kernels, base.kernels
        assert sk.esat is not None and sk.esat.applied is False
        assert sk.ptxas.registers == bk.ptxas.registers
        assert len(sk.vir.instrs) == len(bk.vir.instrs)
        fallbacks = session.metrics.as_dict()["esat.guard_fallbacks"]
        assert fallbacks["value"] == 1

    def test_fallback_leaves_caller_ir_unsaturated(self, monkeypatch):
        """When the guard rejects saturation the caller's IR must stay
        the base program — the region graft only happens on accept."""
        monkeypatch.setattr(
            _Session, "_never_worse", staticmethod(lambda sat, base, arch: False)
        )
        fn = build_module(parse_program(SRC)).functions[0]
        CompilerSession().compile_function(fn, SAT)
        from repro.ir.printer import format_expr
        from repro.ir.stmt import Assign, walk_stmts

        (assign,) = [
            s for s in walk_stmts(fn.regions()[0].body)
            if isinstance(s, Assign)
        ]
        assert "* 2.0" in format_expr(assign.value)

    def test_accepted_saturation_grafts_region_ir(self):
        fn = build_module(parse_program(SRC)).functions[0]
        CompilerSession().compile_function(fn, SAT)
        from repro.ir.printer import format_expr
        from repro.ir.stmt import Assign, walk_stmts

        (assign,) = [
            s for s in walk_stmts(fn.regions()[0].body)
            if isinstance(s, Assign)
        ]
        assert format_expr(assign.value).count("b[i]") == 3

    def test_guarded_compile_is_bit_identical(self):
        """The shipped saturated program computes the base program's
        exact bits (scalar oracle)."""
        n = 64
        rng = np.random.default_rng(7)
        b = rng.uniform(-2.0, 2.0, size=n)

        fn_base = build_module(parse_program(SRC)).functions[0]
        a_base = {"a": np.zeros(n), "b": b.copy(), "n": n}
        run_kernel(fn_base, a_base)

        fn_sat = build_module(parse_program(SRC)).functions[0]
        CompilerSession().compile_function(fn_sat, SAT)
        a_sat = {"a": np.zeros(n), "b": b.copy(), "n": n}
        run_kernel(fn_sat, a_sat)

        np.testing.assert_array_equal(a_base["a"], a_sat["a"])

    def test_esat_counters_recorded_in_session_stats(self):
        session = CompilerSession()
        session.compile_source(SRC, SAT)
        counters = session.metrics.as_dict()
        assert counters["esat.rewritten"]["value"] >= 1
        assert counters["esat.new_candidates"]["value"] >= 1
        assert counters["esat.guard_fallbacks"]["value"] == 0
