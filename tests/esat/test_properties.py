"""The two acceptance properties of equality saturation:

* **bit-identity** — a saturated program computes exactly the bits of the
  unsaturated one, on random programs drawn from the rules' trigger
  fragment (hypothesis) and on the full 16-benchmark suite against the
  scalar oracle;
* **determinism** — saturation+extraction is byte-identical across
  processes under different ``PYTHONHASHSEED`` values (no set/dict-order
  dependence anywhere in the e-graph)."""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
from hypothesis import given, settings, strategies as st

import repro
from repro.bench import load_all
from repro.bench.args import build_test_args
from repro.esat import saturate_region
from repro.gpu.interpreter import run_kernel
from repro.ir import build_module
from repro.lang import parse_program

SPEC_SUITE, NAS_SUITE = load_all()
ALL_SPECS = list(SPEC_SUITE.all()) + list(NAS_SUITE.all())


# ---------------------------------------------------------------------------
# Random saturable programs: every term is drawn from the fragment some
# rewrite rule fires on, so saturation actually transforms most samples.
# ---------------------------------------------------------------------------


@st.composite
def saturable_programs(draw):
    terms = []
    for _ in range(draw(st.integers(1, 4))):
        kind = draw(st.sampled_from(
            ["mul2", "divpow2", "divcancel", "fold", "identity", "stencil"]
        ))
        off = draw(st.integers(0, 2))
        ref = f"b[i + {off}]"
        if kind == "mul2":
            terms.append(f"{ref} * 2.0")
        elif kind == "divpow2":
            c = draw(st.sampled_from([2.0, 4.0, 8.0, 0.5]))
            terms.append(f"{ref} / {c!r}")
        elif kind == "divcancel":
            c = draw(st.integers(2, 5))
            terms.append(f"b[(i * {c}) / {c} + {off}]")
        elif kind == "fold":
            a, b = draw(st.integers(-9, 9)), draw(st.integers(-9, 9))
            terms.append(f"{ref} * ({a} + {b} * 2)")
        elif kind == "identity":
            terms.append(f"({ref} * 1.0) + (i - i)")
        else:
            terms.append(f"{ref} + b[i + {off}]")
    body = " + ".join(terms)
    return f"""
    kernel k(double a[0:n], const double b[0:n], int n) {{
      #pragma acc kernels loop gang vector(64)
      for (i = 0; i < n - 3; i++) {{
        a[i] = {body};
      }}
    }}
    """


class TestBitIdentityProperty:
    @given(saturable_programs(), st.integers(8, 32), st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_saturation_preserves_scalar_oracle_bits(self, src, n, seed):
        rng = np.random.default_rng(seed)
        b = rng.uniform(-4.0, 4.0, size=n)

        fn1 = build_module(parse_program(src)).functions[0]
        a1 = np.zeros(n)
        _, s1 = run_kernel(fn1, {"a": a1, "b": b.copy(), "n": n})

        fn2 = build_module(parse_program(src)).functions[0]
        for region in fn2.regions():
            saturate_region(region)
        a2 = np.zeros(n)
        _, s2 = run_kernel(fn2, {"a": a2, "b": b.copy(), "n": n})

        np.testing.assert_array_equal(a1, a2)
        # Same trip counts and stores: control flow is untouched (the
        # raw interpreter may see *more* loads — x*2 -> x+x duplicates a
        # reference on purpose; codegen value numbering collapses it).
        assert s2.iterations == s1.iterations
        assert s2.stores == s1.stores

    @given(saturable_programs())
    @settings(max_examples=25, deadline=None)
    def test_saturating_twice_is_idempotent(self, src):
        from repro.ir.printer import Printer

        fn = build_module(parse_program(src)).functions[0]
        for region in fn.regions():
            saturate_region(region)
        once = Printer().print_function(fn)
        for region in fn.regions():
            saturate_region(region)
        assert Printer().print_function(fn) == once


class TestBenchmarkSuiteBitIdentity:
    def test_all_16_benchmarks_bit_identical_under_saturation(self):
        """The headline acceptance property, on every SPEC ACCEL and NAS
        benchmark at test scale: saturate every region, run the scalar
        oracle, compare every output array bit for bit."""
        assert len(ALL_SPECS) == 16
        for spec in ALL_SPECS:
            fn1, args1 = build_test_args(spec, seed=0)
            fn2, args2 = build_test_args(spec, seed=0)
            arrays1, _ = run_kernel(fn1, args1)
            for region in fn2.regions():
                saturate_region(region)
            arrays2, _ = run_kernel(fn2, args2)
            assert set(arrays1) == set(arrays2)
            for name in arrays1:
                np.testing.assert_array_equal(
                    arrays1[name], arrays2[name],
                    err_msg=f"{spec.name}: array {name!r} diverged",
                )

    def test_at_least_three_benchmarks_gain_safara_candidates(self):
        """Saturation must feed scalar replacement: >= 3 benchmarks where
        some kernel gains a new repeated reference or a unified
        spelling (the ACC Saturator claim, ISSUE acceptance)."""
        gained = []
        for spec in ALL_SPECS:
            fn, _ = build_test_args(spec, seed=0)
            for region in fn.regions():
                report = saturate_region(region)
                if report.new_candidates or report.unified_spellings:
                    gained.append(spec.name)
                    break
        assert len(gained) >= 3, gained


# ---------------------------------------------------------------------------
# Cross-process determinism under hash randomization.
# ---------------------------------------------------------------------------

_DETERMINISM_SCRIPT = r"""
import sys
from repro.bench import load_all
from repro.bench.args import build_test_args
from repro.esat import saturate_region
from repro.ir.printer import Printer

SPEC, NAS = load_all()
out = []
for spec in (SPEC.get("356.sp"), NAS.get("BT")):
    fn, _ = build_test_args(spec, seed=0)
    for region in fn.regions():
        r = saturate_region(region)
        out.append((r.exprs, r.nodes, r.classes, r.unions, r.iterations,
                    r.saturated, r.unified_spellings, r.rewritten,
                    r.new_candidates))
    out.append(Printer().print_function(fn))
sys.stdout.write(repr(out))
"""


class TestHashSeedDeterminism:
    def test_saturation_is_identical_across_hash_seeds(self, tmp_path):
        """Three subprocesses under different ``PYTHONHASHSEED`` values
        must print byte-identical saturated IR and reports."""
        script = tmp_path / "saturate_once.py"
        script.write_text(_DETERMINISM_SCRIPT)
        src_dir = str(Path(repro.__file__).resolve().parents[1])
        outputs = []
        for seed in ("0", "1", "4242"):
            env = dict(os.environ)
            env["PYTHONPATH"] = src_dir
            env["PYTHONHASHSEED"] = seed
            proc = subprocess.run(
                [sys.executable, str(script)],
                capture_output=True,
                text=True,
                env=env,
                timeout=300,
            )
            assert proc.returncode == 0, proc.stderr
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1] == outputs[2]
        assert "rewritten" not in outputs[0]  # sanity: repr of tuples/str
