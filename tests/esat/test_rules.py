"""The rewrite-rule catalog: each rule unifies exactly what its bit-exact
contract promises — and refuses the float rewrites the module docstring
rules out (reassociation, ``+ 0.0``, general div-to-mul, pow chains)."""

from repro.esat.egraph import EGraph
from repro.esat.rules import default_rules
from repro.ir import BinOp, IntConst, UnOp, VarRef
from repro.ir.expr import Call, FloatConst
from repro.ir.symbols import Symbol, SymbolKind
from repro.ir.types import F64, I32

X = Symbol(name="x", stype=F64, kind=SymbolKind.PARAM)
Y = Symbol(name="y", stype=F64, kind=SymbolKind.PARAM)
Z = Symbol(name="z", stype=F64, kind=SymbolKind.PARAM)
I = Symbol(name="i", stype=I32, kind=SymbolKind.LOOPVAR)
J = Symbol(name="j", stype=I32, kind=SymbolKind.LOOPVAR)


def unified(e1, e2) -> bool:
    """Saturation proves ``e1 == e2`` (they land in one e-class)."""
    eg = EGraph()
    a, b = eg.add(e1), eg.add(e2)
    eg.saturate(default_rules())
    return eg.find(a) == eg.find(b)


class TestCommute:
    def test_int_add_commutes(self):
        assert unified(BinOp("+", VarRef(I), VarRef(J)),
                       BinOp("+", VarRef(J), VarRef(I)))

    def test_float_mul_commutes(self):
        assert unified(BinOp("*", VarRef(X), VarRef(Y)),
                       BinOp("*", VarRef(Y), VarRef(X)))

    def test_sub_does_not_commute(self):
        assert not unified(BinOp("-", VarRef(I), VarRef(J)),
                           BinOp("-", VarRef(J), VarRef(I)))


class TestAssociateInt:
    def test_int_add_reassociates(self):
        a = BinOp("+", BinOp("+", VarRef(I), VarRef(J)), IntConst(3))
        b = BinOp("+", VarRef(I), BinOp("+", VarRef(J), IntConst(3)))
        assert unified(a, b)

    def test_float_add_does_not_reassociate(self):
        """Reassociation changes float rounding — deliberately absent."""
        a = BinOp("+", BinOp("+", VarRef(X), VarRef(Y)), VarRef(Z))
        b = BinOp("+", VarRef(X), BinOp("+", VarRef(Y), VarRef(Z)))
        assert not unified(a, b)


class TestFoldInt:
    def test_add_folds(self):
        assert unified(BinOp("+", IntConst(3), IntConst(4)), IntConst(7))

    def test_mul_folds(self):
        assert unified(BinOp("*", IntConst(-3), IntConst(5)), IntConst(-15))

    def test_div_truncates_toward_zero(self):
        """C semantics: -7 / 2 == -3 (not Python's floor -4)."""
        assert unified(BinOp("/", IntConst(-7), IntConst(2)), IntConst(-3))
        assert not unified(BinOp("/", IntConst(-7), IntConst(2)), IntConst(-4))

    def test_div_by_zero_never_folds(self):
        assert not unified(BinOp("/", IntConst(7), IntConst(0)), IntConst(0))

    def test_unary_neg_folds(self):
        assert unified(UnOp("-", IntConst(5)), IntConst(-5))

    def test_float_constants_do_not_fold(self):
        assert not unified(BinOp("+", FloatConst(1.0), FloatConst(2.0)),
                           FloatConst(3.0))


class TestIdentity:
    def test_mul_one_float(self):
        assert unified(BinOp("*", VarRef(X), FloatConst(1.0)), VarRef(X))

    def test_div_one_float(self):
        assert unified(BinOp("/", VarRef(X), FloatConst(1.0)), VarRef(X))

    def test_add_zero_int_only(self):
        assert unified(BinOp("+", VarRef(I), IntConst(0)), VarRef(I))
        # -0.0 + 0.0 is +0.0: the float form must NOT unify.
        assert not unified(BinOp("+", VarRef(X), FloatConst(0.0)), VarRef(X))

    def test_mul_zero_int_only(self):
        assert unified(BinOp("*", VarRef(I), IntConst(0)), IntConst(0))
        # NaN * 0.0 is NaN: the float form must NOT unify.
        assert not unified(BinOp("*", VarRef(X), FloatConst(0.0)),
                           FloatConst(0.0))

    def test_self_subtraction_int_only(self):
        assert unified(BinOp("-", VarRef(I), VarRef(I)), IntConst(0))
        assert not unified(BinOp("-", VarRef(X), VarRef(X)), FloatConst(0.0))


class TestMulTwo:
    def test_int_times_two_is_self_add(self):
        assert unified(BinOp("*", VarRef(I), IntConst(2)),
                       BinOp("+", VarRef(I), VarRef(I)))

    def test_float_times_two_is_self_add(self):
        assert unified(BinOp("*", VarRef(X), FloatConst(2.0)),
                       BinOp("+", VarRef(X), VarRef(X)))

    def test_times_three_is_not(self):
        assert not unified(BinOp("*", VarRef(X), FloatConst(3.0)),
                           BinOp("+", VarRef(X), VarRef(X)))


class TestDivPow2:
    def test_div_by_power_of_two_is_mul_by_inverse(self):
        assert unified(BinOp("/", VarRef(X), FloatConst(2.0)),
                       BinOp("*", VarRef(X), FloatConst(0.5)))
        assert unified(BinOp("/", VarRef(X), FloatConst(-4.0)),
                       BinOp("*", VarRef(X), FloatConst(-0.25)))

    def test_div_by_non_power_of_two_stays(self):
        """1/3 is not exactly representable — rewriting would change bits."""
        assert not unified(BinOp("/", VarRef(X), FloatConst(3.0)),
                           BinOp("*", VarRef(X), FloatConst(1.0 / 3.0)))

    def test_int_division_is_not_scaled(self):
        assert not unified(BinOp("/", VarRef(I), IntConst(2)),
                           BinOp("*", VarRef(I), IntConst(2)))


class TestDivCancel:
    def test_scaled_subscript_cancels(self):
        """(i * 4) / 4 == i — the obfuscated-subscript re-unifier."""
        assert unified(
            BinOp("/", BinOp("*", VarRef(I), IntConst(4)), IntConst(4)),
            VarRef(I),
        )

    def test_constant_on_either_side_of_the_product(self):
        assert unified(
            BinOp("/", BinOp("*", IntConst(4), VarRef(I)), IntConst(4)),
            VarRef(I),
        )

    def test_mismatched_constants_do_not_cancel(self):
        assert not unified(
            BinOp("/", BinOp("*", VarRef(I), IntConst(4)), IntConst(2)),
            VarRef(I),
        )


class TestPowSquare:
    def test_pow_two_is_self_mul_for_float_base(self):
        assert unified(Call("pow", (VarRef(X), FloatConst(2.0))),
                       BinOp("*", VarRef(X), VarRef(X)))

    def test_pow_one_is_identity_for_float_base(self):
        assert unified(Call("pow", (VarRef(X), FloatConst(1.0))), VarRef(X))

    def test_pow_three_is_left_alone(self):
        """x*x*x rounds twice, pow once — differ by an ulp; no rule."""
        assert not unified(
            Call("pow", (VarRef(X), FloatConst(3.0))),
            BinOp("*", BinOp("*", VarRef(X), VarRef(X)), VarRef(X)),
        )

    def test_int_base_is_left_alone(self):
        """pow promotes an int base to double: x * x would skip the cast."""
        assert not unified(Call("pow", (VarRef(I), FloatConst(2.0))),
                           BinOp("*", VarRef(I), VarRef(I)))


class TestRuleCatalog:
    def test_default_rules_are_deterministically_ordered(self):
        names = [r.name for r in default_rules()]
        assert names == [r.name for r in default_rules()]
        assert len(names) == len(set(names))
        assert "mul-two" in names and "div-pow2" in names
