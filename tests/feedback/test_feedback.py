"""Unit tests for the PTXAS feedback loop driver."""

from repro.codegen import CodegenOptions
from repro.feedback import FeedbackCompiler, optimize_region
from repro.gpu.arch import FERMI_LIKE
from repro.ir import build_module
from repro.lang import parse_program

SRC = """
kernel k(const double u[1:nz][1:ny][1:nx], double out[1:nz][1:ny][1:nx],
         int nx, int ny, int nz) {
  #pragma acc kernels loop gang vector(2)
  for (j = 1; j < ny; j++) {
    #pragma acc loop gang vector(64)
    for (i = 1; i < nx; i++) {
      #pragma acc loop seq
      for (k = 1; k < nz; k++) {
        out[k][j][i] = u[k][j][i] + u[k-1][j][i];
      }
    }
  }
}
"""


def region_of(src=SRC):
    fn = build_module(parse_program(src)).functions[0]
    return fn.regions()[0], fn.symtab


class TestFeedbackCompiler:
    def test_history_accumulates(self):
        region, symtab = region_of()
        fb = FeedbackCompiler(symtab=symtab)
        a = fb(region)
        b = fb(region)
        assert fb.compilations == 2
        assert a.registers == b.registers  # no IR change between calls

    def test_report_has_kernel_name(self):
        region, symtab = region_of()
        fb = FeedbackCompiler(symtab=symtab, name="mykernel")
        info = fb(region)
        assert info.kernel_name == "mykernel"

    def test_options_affect_registers(self):
        region, symtab = region_of()
        fat = FeedbackCompiler(symtab=symtab, options=CodegenOptions(honor_small=False))
        region2, symtab2 = region_of()
        thin = FeedbackCompiler(
            symtab=symtab2, options=CodegenOptions(honor_small=True)
        )
        # No small clause in source, and the arrays are VLAs, so both use
        # 64-bit offsets — equal registers (the clause matters, not the flag).
        assert fat(region).registers == thin(region2).registers

    def test_register_limit_passed_to_allocator(self):
        region, symtab = region_of()
        fb = FeedbackCompiler(symtab=symtab, register_limit=16)
        assert fb(region).registers <= 16


class TestOptimizeRegion:
    def test_returns_report_and_history(self):
        region, symtab = region_of()
        report, fb = optimize_region(region, symtab)
        assert report.groups_replaced >= 1
        assert fb.compilations == len(fb.history) >= 2

    def test_respects_arch_limit(self):
        region, symtab = region_of()
        report, _ = optimize_region(region, symtab, arch=FERMI_LIKE)
        assert report.register_limit == FERMI_LIKE.max_registers_per_thread
        assert report.final_registers <= FERMI_LIKE.max_registers_per_thread

    def test_fermi_disables_readonly_cache_pricing(self):
        """On a pre-Kepler arch the read-only class collapses into global;
        the run must still converge and replace the chain."""
        region, symtab = region_of()
        report, _ = optimize_region(region, symtab, arch=FERMI_LIKE)
        assert report.groups_replaced >= 1
