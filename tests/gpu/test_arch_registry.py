"""The pluggable arch registry and the per-SIMD (CDNA2) occupancy model.

The CDNA2 wavefront-per-SIMD table below is the published MI200-series
occupancy ladder; the same limits are gated end-to-end by the ``fleet``
row of ``benchmarks/regress.py``.
"""

import pytest

from repro.errors import ConfigError
from repro.gpu.arch import (
    ARCHES,
    CDNA2_MI250,
    FERMI_LIKE,
    KEPLER_K20XM,
    ArchRegistry,
    GpuArch,
    arch_key,
    get_arch,
    list_archs,
)
from repro.gpu.occupancy import compute_occupancy

#: Published MI200 occupancy ladder: architected VGPRs -> waves/SIMD.
CDNA2_TIERS = [
    (64, 8),
    (72, 7),
    (84, 6),
    (102, 5),
    (128, 4),
    (170, 3),
    (256, 2),
]

#: One register past each tier boundary drops exactly one wavefront.
CDNA2_BOUNDARIES = [
    (65, 7),
    (73, 6),
    (85, 5),
    (103, 4),
    (129, 3),
    (171, 2),
]


class TestRegistryLookup:
    def test_canonical_names_resolve(self):
        assert get_arch("kepler-k20xm") is KEPLER_K20XM
        assert get_arch("fermi-like") is FERMI_LIKE
        assert get_arch("cdna2-mi250") is CDNA2_MI250

    def test_aliases_and_display_names_resolve(self):
        assert get_arch("kepler") is KEPLER_K20XM
        assert get_arch("k20xm") is KEPLER_K20XM
        assert get_arch("Tesla K20Xm") is KEPLER_K20XM
        assert get_arch("mi250") is CDNA2_MI250
        assert get_arch("gfx90a") is CDNA2_MI250

    def test_lookup_normalizes_case_spaces_and_underscores(self):
        assert get_arch("CDNA2_MI250") is CDNA2_MI250
        assert get_arch("  cdna2 mi250  ") is CDNA2_MI250
        assert get_arch("Kepler-K20XM") is KEPLER_K20XM

    def test_gpu_arch_instances_pass_through_identically(self):
        custom = GpuArch(
            name="ad-hoc",
            num_sms=1,
            registers_per_sm=1024,
            max_registers_per_thread=63,
            register_granularity=4,
            max_threads_per_sm=512,
            max_threads_per_block=512,
            max_blocks_per_sm=4,
            warp_size=32,
            shared_mem_per_sm=1024,
            clock_mhz=100.0,
            mem_bandwidth_gbs=10.0,
            cores_per_sm=8,
            f64_throughput_ratio=0.5,
            has_readonly_cache=False,
            transaction_bytes=128,
        )
        assert get_arch(custom) is custom

    def test_unknown_name_lists_registered_profiles(self):
        with pytest.raises(ConfigError, match="unknown GPU arch 'tpu'") as exc:
            get_arch("tpu")
        for name in list_archs():
            assert name in str(exc.value)

    def test_list_archs_is_sorted_and_contains_the_fleet(self):
        names = list_archs()
        assert names == sorted(names)
        assert {"kepler-k20xm", "fermi-like", "cdna2-mi250"} <= set(names)

    def test_contains_accepts_aliases(self):
        assert "mi250" in ARCHES
        assert "cdna2-mi250" in ARCHES
        assert "tpu" not in ARCHES

    def test_arch_key_round_trips(self):
        assert arch_key("kepler") == "kepler-k20xm"
        assert arch_key(CDNA2_MI250) == "cdna2-mi250"
        assert arch_key(KEPLER_K20XM) == "kepler-k20xm"

    def test_arch_key_falls_back_to_display_name_when_unregistered(self):
        from dataclasses import replace

        adhoc = replace(KEPLER_K20XM, name="My Custom SM", num_sms=1)
        assert arch_key(adhoc) == "my-custom-sm"


class TestCustomRegistration:
    def test_register_and_resolve_with_aliases(self):
        from dataclasses import replace

        registry = ArchRegistry()
        profile = replace(KEPLER_K20XM, name="Tesla K40")
        registry.register("kepler-k40", profile, aliases=("k40",))
        assert registry.get("k40") is profile
        assert registry.get("Tesla K40") is profile
        assert registry.key_of(profile) == "kepler-k40"
        assert registry.names() == ["kepler-k40"]

    def test_fresh_registry_rejects_everything(self):
        with pytest.raises(ConfigError, match="registered profiles"):
            ArchRegistry().get("kepler")


class TestCdna2OccupancyModel:
    @pytest.mark.parametrize("vgprs,waves", CDNA2_TIERS)
    def test_published_tier_table(self, vgprs, waves):
        assert CDNA2_MI250.waves_per_simd(vgprs) == waves

    @pytest.mark.parametrize("vgprs,waves", CDNA2_BOUNDARIES)
    def test_one_register_past_a_boundary_drops_a_wave(self, vgprs, waves):
        assert CDNA2_MI250.waves_per_simd(vgprs) == waves

    def test_slot_count_caps_low_register_kernels(self):
        # 512 // 16 = 32, but a SIMD only has 8 wavefront slots.
        assert CDNA2_MI250.waves_per_simd(16) == 8

    def test_granularity_is_two(self):
        assert CDNA2_MI250.round_registers(65) == 66
        assert CDNA2_MI250.round_registers(64) == 64

    def test_max_warps_per_cu_is_thirty_two(self):
        # 4 SIMDs x 8 wavefront slots; the thread bound agrees (2048/64).
        assert CDNA2_MI250.max_warps_per_sm == 32

    def test_per_sm_profiles_reject_waves_per_simd(self):
        with pytest.raises(ValueError, match="per-SIMD"):
            KEPLER_K20XM.waves_per_simd(32)

    def test_compute_occupancy_full_at_64_vgprs(self):
        occ = compute_occupancy(64, 256, CDNA2_MI250)
        assert occ.warp_size == 64
        assert occ.warps_per_block == 4  # 256 threads / 64-wide wavefronts
        assert occ.active_warps == 32
        assert occ.occupancy == 1.0
        assert occ.active_threads == 2048

    def test_compute_occupancy_register_limited_at_128_vgprs(self):
        occ = compute_occupancy(128, 256, CDNA2_MI250)
        # 4 waves/SIMD x 4 SIMDs = 16 wavefronts -> 4 blocks of 4.
        assert occ.blocks_per_sm == 4
        assert occ.active_warps == 16
        assert occ.occupancy == 0.5
        assert occ.limited_by == "registers"


class TestKeplerModelUnchanged:
    """The registry refactor must not move the paper's Kepler numbers."""

    def test_full_occupancy_at_32_registers(self):
        occ = compute_occupancy(32, 256, KEPLER_K20XM)
        assert occ.active_warps == 64
        assert occ.occupancy == 1.0
        assert occ.warp_size == 32

    def test_half_occupancy_at_64_registers(self):
        occ = compute_occupancy(64, 256, KEPLER_K20XM)
        assert occ.active_warps == 32
        assert occ.occupancy == 0.5
        assert occ.limited_by == "registers"

    def test_warp_granule_rounding_applies(self):
        # 33 regs round to 36; 36*32 threads -> 1152 -> 1280-granule…
        # the granule path is per-warp: ceil(36*32 / 256) * 256 = 1280;
        # 65536 // (1280 * 8 warps) = 6 blocks.
        occ = compute_occupancy(33, 256, KEPLER_K20XM)
        assert occ.blocks_per_sm == 6
        assert occ.active_warps == 48
