"""Tests for the device facade and the host-device transfer model."""

import numpy as np
import pytest

from repro.gpu import SimulatedDevice, TransferEstimate, estimate_transfers
from repro.ir import build_module
from repro.lang import parse_program

SRC = """
kernel k(const double u[1:n], double v[1:n], int n) {
  #pragma acc kernels loop gang vector(64) copyin(u) copyout(v)
  for (i = 1; i <= n; i++) {
    v[i] = 2.0 * u[i];
  }
}
"""


def region_of(src=SRC):
    fn = build_module(parse_program(src)).functions[0]
    return fn, fn.regions()[0], fn.symtab


class TestTransferModel:
    def test_copyin_copyout_split(self):
        _, region, symtab = region_of()
        t = estimate_transfers(region, symtab, {"n": 1000})
        assert t.h2d_bytes == 1000 * 8
        assert t.d2h_bytes == 1000 * 8

    def test_copy_moves_both_ways(self):
        src = SRC.replace("copyin(u) copyout(v)", "copy(u, v)")
        _, region, symtab = region_of(src)
        t = estimate_transfers(region, symtab, {"n": 100})
        assert t.h2d_bytes == t.d2h_bytes == 2 * 100 * 8

    def test_unclaused_arrays_default_to_copy(self):
        src = SRC.replace(" copyin(u) copyout(v)", "")
        _, region, symtab = region_of(src)
        t = estimate_transfers(region, symtab, {"n": 100})
        assert t.h2d_bytes == 2 * 100 * 8  # both arrays, implicitly

    def test_present_moves_nothing(self):
        src = SRC.replace("copyin(u) copyout(v)", "present(u, v)")
        _, region, symtab = region_of(src)
        t = estimate_transfers(region, symtab, {"n": 100})
        assert t.h2d_bytes == 0 and t.d2h_bytes == 0

    def test_transfer_time_scales_with_bytes(self):
        small = TransferEstimate(1 << 20, 0)
        big = TransferEstimate(1 << 28, 0)
        assert big.time_ms() > 100 * small.time_ms()

    def test_empty_transfer_is_free(self):
        assert TransferEstimate(0, 0).time_ms() == 0.0


class TestSimulatedDevice:
    def test_launch_records_everything(self):
        _, region, symtab = region_of()
        dev = SimulatedDevice()
        record = dev.launch(region, symtab, {"n": 1 << 20}, name="axpy")
        assert record.kernel.name == "axpy"
        assert record.ptxas.registers > 0
        assert record.timing.time_ms > 0
        assert record.total_ms > record.timing.time_ms  # transfers included
        assert dev.total_ms == record.total_ms

    def test_transfers_can_be_excluded(self):
        _, region, symtab = region_of()
        dev = SimulatedDevice()
        record = dev.launch(region, symtab, {"n": 1 << 20}, include_transfers=False)
        assert record.total_ms == record.timing.time_ms

    def test_functional_run(self):
        fn, _, _ = region_of()
        dev = SimulatedDevice()
        u = np.arange(8, dtype=np.float64)
        v = np.zeros(8)
        dev.run(fn, {"u": u, "v": v, "n": 8})
        np.testing.assert_array_equal(v, 2 * u)

    def test_small_transfer_dominated_kernel(self):
        """For a tiny kernel, PCIe transfers dominate — the OpenACC
        performance lesson the data clauses exist for."""
        _, region, symtab = region_of()
        dev = SimulatedDevice()
        record = dev.launch(region, symtab, {"n": 1 << 22})
        assert record.transfers.time_ms() > record.timing.time_ms
