"""Unit tests for the functional interpreter."""

import numpy as np
import pytest

from repro.gpu.interpreter import InterpreterError, run_kernel
from repro.ir import build_module
from repro.lang import parse_program


def lower(src):
    return build_module(parse_program(src)).functions[0]


class TestBasicExecution:
    def test_simple_loop(self):
        fn = lower(
            """
            kernel k(double a[n], int n) {
              #pragma acc loop seq
              for (i = 0; i < n; i++) { a[i] = 2.0 * i; }
            }
            """
        )
        a = np.zeros(5)
        run_kernel(fn, {"a": a, "n": 5})
        np.testing.assert_array_equal(a, [0.0, 2.0, 4.0, 6.0, 8.0])

    def test_parallel_region_executes_sequentially(self):
        fn = lower(
            """
            kernel k(double a[n], const double b[n], int n) {
              #pragma acc kernels loop gang vector(64)
              for (i = 0; i < n; i++) { a[i] = b[i] + 1.0; }
            }
            """
        )
        b = np.arange(8, dtype=np.float64)
        a = np.zeros(8)
        run_kernel(fn, {"a": a, "b": b, "n": 8})
        np.testing.assert_array_equal(a, b + 1.0)

    def test_nested_loops_2d(self):
        fn = lower(
            """
            kernel k(double a[n][m], int n, int m) {
              #pragma acc loop seq
              for (i = 0; i < n; i++) {
                #pragma acc loop seq
                for (j = 0; j < m; j++) { a[i][j] = i * 10 + j; }
              }
            }
            """
        )
        a = np.zeros((3, 4))
        run_kernel(fn, {"a": a, "n": 3, "m": 4})
        assert a[2][3] == 23.0
        assert a[0][1] == 1.0

    def test_lower_bound_rebasing(self):
        # Fortran-style a[1:n]: index 1 maps to storage slot 0.
        fn = lower(
            """
            kernel k(double a[1:n], int n) {
              #pragma acc loop seq
              for (i = 1; i <= n; i++) { a[i] = i; }
            }
            """
        )
        a = np.zeros(4)
        run_kernel(fn, {"a": a, "n": 4})
        np.testing.assert_array_equal(a, [1.0, 2.0, 3.0, 4.0])

    def test_pointer_param_linear_index(self):
        fn = lower(
            """
            kernel k(double * restrict p, int n, int m) {
              #pragma acc loop seq
              for (i = 0; i < n; i++) { p[i*m + 1] = 7.0; }
            }
            """
        )
        p = np.zeros(10)
        run_kernel(fn, {"p": p, "n": 3, "m": 3})
        np.testing.assert_array_equal(p.nonzero()[0], [1, 4, 7])

    def test_if_else(self):
        fn = lower(
            """
            kernel k(double a[n], int n) {
              #pragma acc loop seq
              for (i = 0; i < n; i++) {
                if (i % 2 == 0) { a[i] = 1.0; } else { a[i] = -1.0; }
              }
            }
            """
        )
        a = np.zeros(4)
        run_kernel(fn, {"a": a, "n": 4})
        np.testing.assert_array_equal(a, [1.0, -1.0, 1.0, -1.0])

    def test_downward_loop(self):
        fn = lower(
            """
            kernel k(double a[n], int n) {
              #pragma acc loop seq
              for (i = n - 1; i >= 1; i--) { a[i] = a[i-1]; }
            }
            """
        )
        a = np.arange(5, dtype=np.float64)
        run_kernel(fn, {"a": a, "n": 5})
        np.testing.assert_array_equal(a, [0, 0, 1, 2, 3])

    def test_scalar_accumulation(self):
        fn = lower(
            """
            kernel k(double out[1], const double b[n], int n) {
              double s = 0.0;
              #pragma acc loop seq
              for (i = 0; i < n; i++) { s += b[i]; }
              out[0] = s;
            }
            """
        )
        b = np.ones(10)
        out = np.zeros(1)
        run_kernel(fn, {"out": out, "b": b, "n": 10})
        assert out[0] == 10.0

    def test_intrinsics(self):
        fn = lower(
            """
            kernel k(double a[4]) {
              a[0] = sqrt(16.0);
              a[1] = max(2.0, 3.0);
              a[2] = fabs(0.0 - 5.0);
              a[3] = pow(2.0, 10.0);
            }
            """
        )
        a = np.zeros(4)
        run_kernel(fn, {"a": a})
        np.testing.assert_array_equal(a, [4.0, 3.0, 5.0, 1024.0])

    def test_ternary(self):
        fn = lower(
            """
            kernel k(double a[n], const double b[n], int n) {
              #pragma acc loop seq
              for (i = 0; i < n; i++) { a[i] = b[i] > 0.5 ? 1.0 : 0.0; }
            }
            """
        )
        b = np.array([0.2, 0.7, 0.5, 0.9])
        a = np.zeros(4)
        run_kernel(fn, {"a": a, "b": b, "n": 4})
        np.testing.assert_array_equal(a, [0.0, 1.0, 0.0, 1.0])

    def test_c_integer_division(self):
        fn = lower(
            """
            kernel k(double a[2], int x, int y) {
              a[0] = (0 - 7) / 2;
              a[1] = (0 - 7) % 2;
            }
            """
        )
        a = np.zeros(2)
        run_kernel(fn, {"a": a, "x": 0, "y": 0})
        assert a[0] == -3.0  # C truncation, not Python floor
        assert a[1] == -1.0


class TestValidation:
    def test_missing_argument(self):
        fn = lower("kernel k(double a[n], int n) { }")
        with pytest.raises(InterpreterError, match="missing argument"):
            run_kernel(fn, {"n": 4})

    def test_unknown_argument(self):
        fn = lower("kernel k(int n) { }")
        with pytest.raises(InterpreterError, match="unknown arguments"):
            run_kernel(fn, {"n": 4, "zzz": 1})

    def test_shape_mismatch(self):
        fn = lower("kernel k(double a[n], int n) { }")
        with pytest.raises(InterpreterError, match="extent"):
            run_kernel(fn, {"a": np.zeros(3), "n": 4})

    def test_out_of_bounds_load(self):
        fn = lower(
            """
            kernel k(double a[n], int n) {
              #pragma acc loop seq
              for (i = 0; i <= n; i++) { a[i] = 0.0; }
            }
            """
        )
        with pytest.raises(InterpreterError, match="out-of-bounds"):
            run_kernel(fn, {"a": np.zeros(4), "n": 4})

    def test_division_by_zero(self):
        fn = lower("kernel k(double a[1], int n) { a[0] = n / (n - n); }")
        with pytest.raises(InterpreterError, match="division by zero"):
            run_kernel(fn, {"a": np.zeros(1), "n": 3})


class TestStats:
    def test_load_store_counts(self):
        fn = lower(
            """
            kernel k(double a[n], const double b[n], int n) {
              #pragma acc loop seq
              for (i = 1; i < n; i++) { a[i] = b[i] + b[i-1]; }
            }
            """
        )
        _, stats = run_kernel(fn, {"a": np.zeros(6), "b": np.ones(6), "n": 6})
        assert stats.loads == 10  # 2 loads x 5 iterations
        assert stats.stores == 5
        assert stats.iterations == 5
