"""Unit tests for occupancy, transaction and timing models."""

import pytest

from repro.analysis.coalescing import AccessInfo, AccessPattern
from repro.analysis.memspace import MemSpace
from repro.codegen import CodegenOptions, generate_kernel
from repro.gpu import (
    KEPLER_K20XM,
    compute_occupancy,
    estimate_time,
    measure_all,
    measure_latency,
    ptxas_info,
    warp_transaction_bytes,
    warp_transactions,
)
from repro.ir import build_module
from repro.lang import parse_program


class TestOccupancy:
    def test_low_registers_full_occupancy(self):
        occ = compute_occupancy(32, 256)
        assert occ.occupancy == 1.0

    def test_high_registers_reduce_occupancy(self):
        low = compute_occupancy(32, 256)
        high = compute_occupancy(128, 256)
        assert high.active_warps < low.active_warps
        assert high.limited_by == "registers"

    def test_255_registers_minimum_occupancy(self):
        occ = compute_occupancy(255, 256)
        assert occ.blocks_per_sm >= 1
        assert occ.occupancy < 0.25

    def test_monotone_in_registers(self):
        prev = None
        for regs in (32, 48, 64, 96, 128, 192, 255):
            occ = compute_occupancy(regs, 128).active_warps
            if prev is not None:
                assert occ <= prev
            prev = occ

    def test_small_blocks_limited_by_block_slots(self):
        occ = compute_occupancy(16, 32)
        assert occ.limited_by in ("blocks", "threads")
        assert occ.blocks_per_sm == KEPLER_K20XM.max_blocks_per_sm

    def test_shared_memory_limit(self):
        occ = compute_occupancy(16, 256, shared_mem_per_block=24 * 1024)
        assert occ.blocks_per_sm == 2
        assert occ.limited_by == "shared-memory"


class TestTransactions:
    def test_coalesced_f32_one_transaction(self):
        acc = AccessInfo(AccessPattern.COALESCED, 1)
        assert warp_transactions(acc, 32) == 1
        assert warp_transaction_bytes(acc, 32) == 128

    def test_coalesced_f64_two_transactions(self):
        acc = AccessInfo(AccessPattern.COALESCED, 1)
        assert warp_transactions(acc, 64) == 2
        assert warp_transaction_bytes(acc, 64) == 256

    def test_uniform_single_sector(self):
        acc = AccessInfo(AccessPattern.UNIFORM, 0)
        assert warp_transaction_bytes(acc, 64) == 32

    def test_scattered_32_sectors(self):
        acc = AccessInfo(AccessPattern.UNCOALESCED, None)
        assert warp_transaction_bytes(acc, 32) == 32 * 32

    def test_stride_scales_traffic(self):
        small = warp_transaction_bytes(AccessInfo(AccessPattern.UNCOALESCED, 2), 32)
        big = warp_transaction_bytes(AccessInfo(AccessPattern.UNCOALESCED, 16), 32)
        assert small < big
        assert big <= 32 * 32


class TestMicrobench:
    def test_latency_roundtrip(self):
        m = measure_latency(MemSpace.GLOBAL, AccessPattern.COALESCED, 1)
        assert m.cycles == pytest.approx(KEPLER_K20XM.latency.global_mem)

    def test_readonly_faster_than_global(self):
        g = measure_latency(MemSpace.GLOBAL, AccessPattern.COALESCED, 1)
        r = measure_latency(MemSpace.READONLY, AccessPattern.COALESCED, 1)
        assert r.cycles < g.cycles

    def test_uncoalesced_premium(self):
        c = measure_latency(MemSpace.GLOBAL, AccessPattern.COALESCED, 1)
        u = measure_latency(MemSpace.GLOBAL, AccessPattern.UNCOALESCED, None)
        assert u.cycles > 4 * c.cycles

    def test_survey_covers_spaces(self):
        results = measure_all()
        spaces = {m.space for m in results}
        assert {MemSpace.GLOBAL, MemSpace.READONLY, MemSpace.SHARED} <= spaces


def _compile(src, **opt_kwargs):
    fn = build_module(parse_program(src)).functions[0]
    region = fn.regions()[0]
    kernel = generate_kernel(region, fn.symtab, CodegenOptions(**opt_kwargs))
    return kernel, ptxas_info(kernel)


STREAM_SRC = """
kernel stream(double a[n], const double b[n], int n) {
  #pragma acc kernels loop gang vector(256)
  for (i = 0; i < n; i++) { a[i] = 2.0 * b[i]; }
}
"""

UNCOAL_SRC = """
kernel gather(double a[n][64], const double b[n][64], int n) {
  #pragma acc kernels loop gang vector(256)
  for (i = 0; i < n; i++) {
    #pragma acc loop seq
    for (j = 0; j < 64; j++) { a[i][j] = b[i][j] * 2.0; }
  }
}
"""


class TestTiming:
    def test_stream_is_bandwidth_bound(self):
        kernel, info = _compile(STREAM_SRC)
        t = estimate_time(kernel, info, {"n": 1 << 20})
        assert t.bound == "bandwidth"
        assert t.time_ms > 0

    def test_bigger_problem_takes_longer(self):
        kernel, info = _compile(STREAM_SRC)
        t1 = estimate_time(kernel, info, {"n": 1 << 18})
        t2 = estimate_time(kernel, info, {"n": 1 << 22})
        assert t2.time_ms > t1.time_ms * 8

    def test_uncoalesced_slower_than_coalesced(self):
        # Same element count; gather's row-major-hostile layout moves more
        # bytes and exposes more latency.
        k1, i1 = _compile(STREAM_SRC)
        t1 = estimate_time(k1, i1, {"n": 1 << 18})
        k2, i2 = _compile(UNCOAL_SRC)
        t2 = estimate_time(k2, i2, {"n": (1 << 18) // 64})
        assert t2.time_ms > t1.time_ms

    def test_launches_scale_linearly(self):
        kernel, info = _compile(STREAM_SRC)
        t1 = estimate_time(kernel, info, {"n": 1 << 18}, launches=1)
        t10 = estimate_time(kernel, info, {"n": 1 << 18}, launches=10)
        assert t10.time_ms == pytest.approx(10 * t1.time_ms)

    def test_issue_scale_affects_compute_bound_only(self):
        kernel, info = _compile(STREAM_SRC)
        t1 = estimate_time(kernel, info, {"n": 1 << 18}, issue_scale=1.0)
        t2 = estimate_time(kernel, info, {"n": 1 << 18}, issue_scale=0.5)
        assert t2.compute_cycles == pytest.approx(0.5 * t1.compute_cycles)
        assert t2.bandwidth_cycles == pytest.approx(t1.bandwidth_cycles)

    def test_profile_counts_loads_and_stores(self):
        kernel, info = _compile(STREAM_SRC)
        t = estimate_time(kernel, info, {"n": 1 << 18})
        assert t.profile.loads == 1
        assert t.profile.stores == 1

    def test_seq_loop_multiplies_work(self):
        kernel, info = _compile(UNCOAL_SRC)
        t = estimate_time(kernel, info, {"n": 1024})
        assert t.profile.loads == 64  # one load per inner iteration
