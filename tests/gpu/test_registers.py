"""Unit tests for the ptxas-simulator: liveness, pressure, spilling."""

import pytest

from repro.codegen.vir import Instr, Op, VirKernel, VReg, VRegAllocator
from repro.gpu.arch import FERMI_LIKE, KEPLER_K20XM
from repro.gpu.registers import (
    allocate,
    compute_live_intervals,
    max_pressure,
    ptxas_info,
)


def kernel_of(instrs):
    return VirKernel(name="t", instrs=list(instrs))


class TestLiveness:
    def test_straight_line_interval(self):
        ra = VRegAllocator()
        a, b, c = ra.fresh(), ra.fresh(), ra.fresh()
        instrs = [
            Instr(Op.MOV_IMM, dst=a, imm=1),  # 0
            Instr(Op.MOV_IMM, dst=b, imm=2),  # 1
            Instr(Op.ADD, dst=c, srcs=(a, b)),  # 2
            Instr(Op.MOV, dst=a, srcs=(c,)),  # 3
        ]
        ivs = {iv.vreg.id: iv for iv in compute_live_intervals(instrs)}
        assert (ivs[a.id].start, ivs[a.id].end) == (0, 3)
        assert (ivs[b.id].start, ivs[b.id].end) == (1, 2)
        assert (ivs[c.id].start, ivs[c.id].end) == (2, 3)

    def test_pressure_counts_64bit_twice(self):
        ra = VRegAllocator()
        a = ra.fresh(bits=64)
        b = ra.fresh(bits=64)
        instrs = [
            Instr(Op.MOV_IMM, dst=a, imm=1),
            Instr(Op.MOV_IMM, dst=b, imm=2),
            Instr(Op.ADD, dst=a, srcs=(a, b)),
        ]
        assert max_pressure(compute_live_intervals(instrs)) == 4

    def test_disjoint_intervals_share_pressure(self):
        ra = VRegAllocator()
        a, b = ra.fresh(), ra.fresh()
        instrs = [
            Instr(Op.MOV_IMM, dst=a, imm=1),  # 0
            Instr(Op.MOV, dst=a, srcs=(a,)),  # 1  a dies here
            Instr(Op.MOV_IMM, dst=b, imm=2),  # 2
            Instr(Op.MOV, dst=b, srcs=(b,)),  # 3
        ]
        # a: [0,1], b: [2,3] — never overlap.
        assert max_pressure(compute_live_intervals(instrs)) == 1

    def test_value_live_into_loop_extends_through_it(self):
        ra = VRegAllocator()
        outside = ra.fresh()
        tmp = ra.fresh()
        instrs = [
            Instr(Op.MOV_IMM, dst=outside, imm=1),  # 0
            Instr(Op.LOOP_BEGIN),  # 1
            Instr(Op.ADD, dst=tmp, srcs=(outside,)),  # 2
            Instr(Op.LOOP_END),  # 3
            Instr(Op.MOV, dst=tmp, srcs=(outside,)),  # 4 also used after
        ]
        ivs = {iv.vreg.id: iv for iv in compute_live_intervals(instrs)}
        assert ivs[outside.id].start == 0
        assert ivs[outside.id].end == 4

    def test_rotating_temp_live_across_backedge(self):
        """Use-before-def inside the loop (the SR rotation pattern) must be
        live through the whole loop region."""
        ra = VRegAllocator()
        t0, t1 = ra.fresh(), ra.fresh()
        instrs = [
            Instr(Op.LOOP_BEGIN),  # 0
            Instr(Op.MOV, dst=t0, srcs=()),  # 1: t0 = load
            Instr(Op.ADD, dst=None, srcs=(t1,)),  # 2: use t1 (prev iter!)
            Instr(Op.MOV, dst=t1, srcs=(t0,)),  # 3: rotate
            Instr(Op.LOOP_END),  # 4
        ]
        ivs = {iv.vreg.id: iv for iv in compute_live_intervals(instrs)}
        assert (ivs[t1.id].start, ivs[t1.id].end) == (0, 4)
        # Both t0 and t1 alive simultaneously.
        assert max_pressure(compute_live_intervals(instrs)) == 2

    def test_short_temporaries_do_not_accumulate(self):
        """Naive codegen makes many short-lived temps; pressure must track
        overlap, not total count."""
        ra = VRegAllocator()
        instrs = []
        acc = ra.fresh()
        instrs.append(Instr(Op.MOV_IMM, dst=acc, imm=0))
        for _ in range(50):
            t = ra.fresh()
            instrs.append(Instr(Op.MOV_IMM, dst=t, imm=1))
            instrs.append(Instr(Op.ADD, dst=acc, srcs=(acc, t)))
        assert max_pressure(compute_live_intervals(instrs)) == 2


class TestAllocation:
    def _pressure_kernel(self, n_live):
        """A kernel holding n_live 32-bit values simultaneously."""
        ra = VRegAllocator()
        regs = [ra.fresh() for _ in range(n_live)]
        instrs = [Instr(Op.MOV_IMM, dst=r, imm=i) for i, r in enumerate(regs)]
        instrs.append(Instr(Op.ADD, dst=regs[0], srcs=tuple(regs)))
        instrs.append(Instr(Op.RET))
        return kernel_of(instrs)

    def test_no_spill_under_limit(self):
        k = self._pressure_kernel(20)
        info = ptxas_info(k, KEPLER_K20XM)
        assert info.spilled_vregs == 0
        assert info.registers >= 20

    def test_spills_over_limit(self):
        k = self._pressure_kernel(100)
        info = ptxas_info(k, KEPLER_K20XM, register_limit=32)
        assert info.spilled_vregs > 0
        assert info.registers <= 32
        assert info.spill_bytes > 0

    def test_rounding_to_granularity(self):
        k = self._pressure_kernel(17)
        info = ptxas_info(k, KEPLER_K20XM)
        assert info.registers % KEPLER_K20XM.register_granularity == 0

    def test_fermi_limit_lower(self):
        k = self._pressure_kernel(100)
        info = ptxas_info(k, FERMI_LIKE)
        assert info.registers <= FERMI_LIKE.max_registers_per_thread

    def test_summary_format(self):
        k = self._pressure_kernel(10)
        info = ptxas_info(k)
        assert "ptxas info" in info.summary()
        assert "registers" in info.summary()


class TestKernelRegisterBehaviour:
    """End-to-end: clauses reduce emergent register counts (Table I/II
    mechanism)."""

    SRC = """
    kernel hot(const double u[1:nz][1:ny][1:nx], const double v[1:nz][1:ny][1:nx],
               const double w[1:nz][1:ny][1:nx], double out[1:nz][1:ny][1:nx],
               int nx, int ny, int nz) {
      #pragma acc kernels loop gang vector(64) %s
      for (i = 1; i < nx; i++) {
        #pragma acc loop seq
        for (k = 1; k < nz; k++) {
          out[k][1][i] = u[k][1][i] + v[k][1][i] + w[k][1][i];
        }
      }
    }
    """

    def _regs(self, clause, honor_dim, honor_small):
        from repro.codegen import CodegenOptions, generate_kernel
        from repro.ir import build_module
        from repro.lang import parse_program

        fn = build_module(parse_program(self.SRC % clause)).functions[0]
        opts = CodegenOptions(honor_dim=honor_dim, honor_small=honor_small)
        k = generate_kernel(fn.regions()[0], fn.symtab, opts)
        return ptxas_info(k).registers

    def test_small_reduces_registers(self):
        base = self._regs("", False, False)
        small = self._regs("small(u, v, w, out)", False, True)
        assert small < base

    def test_dim_reduces_further(self):
        small = self._regs("small(u, v, w, out)", False, True)
        dim = self._regs(
            "small(u, v, w, out) dim((1:nz,1:ny,1:nx)(u, v, w, out))", True, True
        )
        assert dim < small
