"""Tests for the vectorized execution engine (`repro.gpu.vector_exec`).

The central invariant: whatever the engine does, outputs and
:class:`~repro.gpu.interpreter.ExecutionStats` are *exactly* those of the
scalar interpreter — the interpreter's counting rules are the documented
contract and the vector path's analytic counts must reproduce them.
"""

import logging

import numpy as np
import pytest

from repro.bench import NAS, SPEC, load_all
from repro.bench.args import build_test_args, copy_args
from repro.compiler import CompilerSession, execute_program
from repro.gpu.interpreter import run_kernel
from repro.gpu.vector_exec import VectorUnsupported, execute_kernel
from repro.ir import build_module
from repro.lang import parse_program


def lower(src):
    return build_module(parse_program(src)).functions[0]


def both(src, args, executor="auto"):
    """Run scalar and the requested engine on independent copies."""
    fn = lower(src)
    s_arrays, s_stats = run_kernel(fn, copy_args(args))
    v_arrays, v_stats, info = execute_kernel(
        lower(src), copy_args(args), executor=executor
    )
    return s_arrays, s_stats, v_arrays, v_stats, info


def assert_equivalent(src, args):
    s_arrays, s_stats, v_arrays, v_stats, info = both(src, args)
    assert sorted(s_arrays) == sorted(v_arrays)
    for name in s_arrays:
        np.testing.assert_array_equal(s_arrays[name], v_arrays[name])
    assert s_stats == v_stats
    # The pinned interpreting engine must agree bit-for-bit as well —
    # under ``auto`` the generated-code tier normally answers first.
    p_arrays, p_stats, p_info = execute_kernel(
        lower(src), copy_args(args), executor="vector"
    )
    assert p_info.used == "vector"
    for name in s_arrays:
        np.testing.assert_array_equal(s_arrays[name], p_arrays[name])
    assert s_stats == p_stats
    return info


class TestBenchmarkEquivalence:
    """All 16 modelled benchmarks: bit-identical outputs, equal stats."""

    def _specs(self):
        load_all()
        return list(SPEC.all()) + list(NAS.all())

    def test_all_benchmarks_bit_identical_with_equal_stats(self):
        for spec in self._specs():
            fn, args = build_test_args(spec)
            s_arrays, s_stats = run_kernel(fn, copy_args(args))
            fn2, args2 = build_test_args(spec)
            v_arrays, v_stats, info = execute_kernel(fn2, args2)
            assert sorted(s_arrays) == sorted(v_arrays), spec.name
            for name in s_arrays:
                np.testing.assert_array_equal(
                    s_arrays[name], v_arrays[name], err_msg=f"{spec.name}:{name}"
                )
            assert s_stats == v_stats, spec.name
            if info.used not in ("codegen", "vector"):
                assert info.fallback_reason, spec.name

    def test_most_benchmarks_use_codegen(self):
        used = {}
        for spec in self._specs():
            fn, args = build_test_args(spec)
            _, _, info = execute_kernel(fn, args)
            used[spec.name] = info.used
        # Under ``auto`` the generated-code tier sits above the interpreting
        # vector engine, so every vectorizable benchmark runs via codegen.
        compiled = [n for n, u in used.items() if u == "codegen"]
        assert len(compiled) >= 14, used
        # The EP kernels' LCG exceeds the int64-safe product range by design.
        assert used["352.ep"] == "scalar"
        assert used["EP"] == "scalar"

    def test_most_benchmarks_vectorize_when_pinned(self):
        used = {}
        for spec in self._specs():
            if spec.name in ("352.ep", "EP"):
                continue
            fn, args = build_test_args(spec)
            _, _, info = execute_kernel(fn, args, executor="vector")
            used[spec.name] = info.used
        assert all(u == "vector" for u in used.values()), used

    def test_vector_mode_raises_on_unsupported(self):
        load_all()
        spec = SPEC.get("352.ep")
        fn, args = build_test_args(spec)
        with pytest.raises(VectorUnsupported):
            execute_kernel(fn, args, executor="vector")

    def test_fallback_is_logged(self, caplog):
        load_all()
        spec = SPEC.get("352.ep")
        fn, args = build_test_args(spec)
        with caplog.at_level(logging.INFO, logger="repro.gpu.vector_exec"):
            _, _, info = execute_kernel(fn, args)
        assert info.used == "scalar"
        assert info.fallback_reason
        assert any("falls back to scalar" in r.message for r in caplog.records)


class TestLoweringSemantics:
    def test_nonzero_lower_bound_rebase(self):
        src = """
        kernel k(double a[3:n], const double b[3:n], int n) {
          #pragma acc kernels loop gang vector(64)
          for (i = 3; i < n + 3; i++) { a[i] = 2.0 * b[i] + i; }
        }
        """
        rng = np.random.default_rng(0)
        args = {"a": np.zeros(6), "b": rng.uniform(size=6), "n": 6}
        info = assert_equivalent(src, args)
        assert info.used == "codegen"

    def test_if_masks_guard_division_by_zero(self):
        # Scalar never divides by (i % 3) == 0; the masked vector path must
        # not fault on the inactive lanes either.
        src = """
        kernel k(double a[n], const double b[n], int n) {
          #pragma acc kernels loop gang vector(64)
          for (i = 0; i < n; i++) {
            if (i % 3 != 0) { a[i] = b[i] / (i % 3); }
            else { a[i] = 0.0 - b[i]; }
          }
        }
        """
        rng = np.random.default_rng(1)
        args = {"a": np.zeros(17), "b": rng.uniform(0.5, 2.0, 17), "n": 17}
        info = assert_equivalent(src, args)
        assert info.used == "codegen"

    def test_c_truncation_div_mod_on_negatives(self):
        src = """
        kernel k(int q[n], int r[n], const int p[n], int n) {
          #pragma acc kernels loop gang vector(64)
          for (i = 0; i < n; i++) {
            q[i] = (p[i] * 7 - 11) / 3;
            r[i] = (p[i] * 7 - 11) % 3;
          }
        }
        """
        p = np.array([0, 1, 2, 3, -1, -2], dtype=np.int32)
        args = {
            "q": np.zeros(6, dtype=np.int32),
            "r": np.zeros(6, dtype=np.int32),
            "p": p,
            "n": 6,
        }
        info = assert_equivalent(src, args)
        assert info.used == "codegen"

    def test_lane_varying_sequential_loop(self):
        # CSR-style row walk: each lane's inner trip count differs.  The
        # engine iterates ordinally (lane-local offsets), which must be
        # invisible in both values and stats.
        src = """
        kernel k(double q[m], const double w[nnz], const int s[m1],
                 int m, int m1, int nnz) {
          #pragma acc kernels loop gang vector(64)
          for (i = 0; i < m; i++) {
            double acc = 0.0;
            int lo = s[i];
            int hi = s[i + 1];
            #pragma acc loop seq
            for (k = lo; k < hi; k++) { acc = acc + w[k]; }
            q[i] = acc;
          }
        }
        """
        rng = np.random.default_rng(2)
        lens = rng.integers(0, 7, size=8)
        s = np.concatenate([[0], np.cumsum(lens)]).astype(np.int32)
        nnz = int(s[-1])
        args = {
            "q": np.zeros(8),
            "w": rng.uniform(size=nnz),
            "s": s,
            "m": 8,
            "m1": 9,
            "nnz": nnz,
        }
        info = assert_equivalent(src, args)
        assert info.used == "codegen"

    def test_downward_loop_and_le_bounds(self):
        src = """
        kernel k(double a[n], const double b[n], int n) {
          #pragma acc kernels loop gang vector(64)
          for (i = n - 1; i >= 0; i--) { a[i] = b[i] * i; }
        }
        """
        rng = np.random.default_rng(3)
        args = {"a": np.zeros(9), "b": rng.uniform(size=9), "n": 9}
        info = assert_equivalent(src, args)
        assert info.used == "codegen"

    def test_element_counts_are_analytic(self):
        src = """
        kernel k(double a[n], const double b[n], int n) {
          #pragma acc kernels loop gang vector(64)
          for (i = 0; i < n; i++) { a[i] = b[i] + 1.0; }
        }
        """
        args = {"a": np.zeros(12), "b": np.ones(12), "n": 12}
        _, _, _, _, info = both(src, args)
        assert info.used == "codegen"
        assert info.elements == 12
        assert sum(info.region_elements.values()) == 12


class TestSessionWiring:
    SRC = """
    kernel k(double a[n], const double b[n], int n) {
      #pragma acc kernels loop gang vector(64)
      for (i = 0; i < n; i++) { a[i] = b[i] * 3.0; }
    }
    """

    def _args(self):
        return {"a": np.zeros(5), "b": np.arange(5, dtype=np.float64), "n": 5}

    def test_session_executor_knob(self):
        session = CompilerSession(executor="scalar")
        _, _, info = session.execute(lower(self.SRC), self._args())
        assert (info.requested, info.used) == ("scalar", "scalar")
        _, _, info = session.execute(
            lower(self.SRC), self._args(), executor="vector"
        )
        assert info.used == "vector"

    def test_session_stats_execution_section(self):
        session = CompilerSession()
        session.execute(lower(self.SRC), self._args())
        session.execute(lower(self.SRC), self._args(), executor="scalar")
        execution = session.stats_dict()["execution"]
        assert execution["executions"] == 2
        assert execution["codegen"] == 1
        # An *explicitly requested* scalar run is not a fallback: only
        # vector/auto requests that came back scalar count as fallbacks.
        assert execution["scalar_fallbacks"] == 0
        assert execution["scalar_requested"] == 1
        kernels = execution["kernels"]
        assert [k["kernel"] for k in kernels] == ["k", "k"]
        assert kernels[0]["requested"] == "auto"
        assert kernels[0]["used"] == "codegen"
        assert kernels[0]["elements"] == 5
        assert kernels[1]["requested"] == "scalar"

    def test_execute_program_shim(self):
        arrays, stats, info = execute_program(lower(self.SRC), self._args())
        np.testing.assert_array_equal(arrays["a"], [0.0, 3.0, 6.0, 9.0, 12.0])
        assert info.used == "codegen"
        assert stats.stores == 5
