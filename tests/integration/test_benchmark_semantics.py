"""Integration tests: every benchmark executes correctly at test scale,
and every compiler configuration preserves its semantics bit-for-bit.

This is the strongest guarantee in the repo: the full pipeline (LICM +
Carr-Kennedy/SAFARA + clause handling) is applied to real benchmark
kernels and the transformed IR must produce *identical* results in the
functional interpreter.
"""

import numpy as np
import pytest

from repro.bench import load_all
from repro.bench.args import build_test_args, copy_args
from repro.compiler import (
    BASE,
    CARR_KENNEDY,
    PGI,
    SAFARA_ONLY,
    SMALL_DIM_SAFARA,
    UNROLL_SAFARA,
    VECTOR_SAFARA,
    compile_function,
)
from repro.gpu.interpreter import run_kernel

SPEC_SUITE, NAS_SUITE = load_all()
ALL_SPECS = SPEC_SUITE.all() + NAS_SUITE.all()
CONFIGS = [BASE, SAFARA_ONLY, SMALL_DIM_SAFARA, CARR_KENNEDY, PGI, UNROLL_SAFARA, VECTOR_SAFARA]


@pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.qualified_name)
def test_benchmark_executes(spec):
    """The untransformed benchmark runs in-bounds at test scale."""
    fn, args = build_test_args(spec)
    arrays, stats = run_kernel(fn, args)
    assert stats.stores > 0  # EP-style kernels load nothing but all store
    for name, arr in arrays.items():
        assert np.all(np.isfinite(arr)), f"non-finite values in {name}"


@pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.qualified_name)
@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.name)
def test_pipeline_preserves_semantics(spec, config):
    """Compiling under any configuration leaves results bit-identical."""
    ref_fn, ref_args = build_test_args(spec)
    ref_arrays, ref_stats = run_kernel(ref_fn, ref_args)

    xf_fn, xf_args = build_test_args(spec)
    compile_function(xf_fn, config)  # mutates xf_fn's IR
    xf_arrays, xf_stats = run_kernel(xf_fn, xf_args)

    for name, expected in ref_arrays.items():
        np.testing.assert_array_equal(
            expected,
            xf_arrays[name],
            err_msg=f"{spec.qualified_name} under {config.name}: array {name!r}",
        )


@pytest.mark.parametrize(
    "spec",
    [s for s in ALL_SPECS if s.name in ("355.seismic", "BT", "LU", "304.olbm")],
    ids=lambda s: s.qualified_name,
)
def test_safara_reduces_dynamic_loads(spec):
    """On the reuse-heavy benchmarks SAFARA must reduce executed loads."""
    ref_fn, ref_args = build_test_args(spec)
    _, ref_stats = run_kernel(ref_fn, ref_args)

    xf_fn, xf_args = build_test_args(spec)
    compile_function(xf_fn, SAFARA_ONLY)
    _, xf_stats = run_kernel(xf_fn, xf_args)
    assert xf_stats.loads < ref_stats.loads
