"""Unit tests for AST→IR lowering: name resolution, typing, scoping,
normalisation and clause validation."""

import pytest

from repro.ir import (
    Assign,
    ArrayRef,
    BinOp,
    F32,
    F64,
    I32,
    I64,
    If,
    IntConst,
    LocalDecl,
    Loop,
    Region,
    VarRef,
    build_kernel,
    build_module,
    expr_type,
)
from repro.ir.symbols import SymbolKind
from repro.lang import SemanticError, parse_program


def lower(src, name=None):
    mod = build_module(parse_program(src))
    return mod.functions[0] if name is None else mod.function(name)


class TestParams:
    def test_scalar_types(self):
        fn = lower("kernel k(double d, float f, int i, long l) { }")
        types = [p.stype for p in fn.params]
        assert types == [F64, F32, I32, I64]

    def test_array_dims_resolved_to_symbols(self):
        fn = lower("kernel k(double a[n][m], int n, int m) { }")
        a = fn.params[0]
        n = fn.symtab.require("n")
        assert a.array.dims[0].extent is n
        assert a.array.dims[0].lower == 0

    def test_forward_reference_to_later_param(self):
        # Dims may reference params declared after the array (C doesn't
        # allow this; our two-pass builder does, like Fortran).
        fn = lower("kernel k(double a[n], int n) { }")
        assert fn.params[0].array.dims[0].extent is fn.symtab.require("n")

    def test_lower_bounds(self):
        fn = lower("kernel k(double a[1:n], int n) { }")
        assert fn.params[0].array.dims[0].lower == 1

    def test_unknown_bound_rejected(self):
        with pytest.raises(SemanticError, match="not a parameter"):
            lower("kernel k(double a[zzz]) { }")

    def test_float_bound_rejected(self):
        with pytest.raises(SemanticError, match="integer scalar"):
            lower("kernel k(double a[x], double x) { }")

    def test_duplicate_param_rejected(self):
        with pytest.raises(SemanticError):
            lower("kernel k(int n, int n) { }")

    def test_vla_detection(self):
        fn = lower("kernel k(double a[n][4], double b[8][4], int n) { }")
        assert fn.params[0].array.is_vla
        assert not fn.params[1].array.is_vla
        assert fn.params[1].array.static_size_bytes() == 8 * 4 * 8


class TestScoping:
    def test_sibling_locals_same_name(self):
        fn = lower(
            """
            kernel k(double a[n], int n) {
              #pragma acc loop seq
              for (i = 0; i < n; i++) { double t = 1.0; a[i] = t; }
              #pragma acc loop seq
              for (j = 0; j < n; j++) { double t = 2.0; a[j] = t; }
            }
            """
        )
        # Two distinct symbols, uniquified in the table.
        loops = [s for s in fn.body if isinstance(s, Loop)]
        t1 = loops[0].body[0].sym
        t2 = loops[1].body[0].sym
        assert t1 is not t2

    def test_redeclaration_in_same_scope_rejected(self):
        with pytest.raises(SemanticError, match="already declared"):
            lower("kernel k() { double t = 1.0; double t = 2.0; }")

    def test_shadowing_param_in_loop(self):
        fn = lower(
            """
            kernel k(double a[n], int n, double t) {
              #pragma acc loop seq
              for (i = 0; i < n; i++) { double t = 2.0; a[i] = t; }
            }
            """
        )
        loop = next(s for s in fn.body if isinstance(s, Loop))
        inner_t = loop.body[0].sym
        assert inner_t is not fn.symtab.require("t")

    def test_loop_var_reuse_across_siblings(self):
        fn = lower(
            """
            kernel k(double a[n], int n) {
              #pragma acc loop seq
              for (i = 0; i < n; i++) { a[i] = 1.0; }
              #pragma acc loop seq
              for (i = 0; i < n; i++) { a[i] = 2.0; }
            }
            """
        )
        assert len([s for s in fn.body if isinstance(s, Loop)]) == 2

    def test_nested_loop_var_reuse_rejected(self):
        with pytest.raises(SemanticError, match="reused"):
            lower(
                """
                kernel k(double a[n], int n) {
                  #pragma acc loop seq
                  for (i = 0; i < n; i++) {
                    #pragma acc loop seq
                    for (i = 0; i < n; i++) { a[i] = 1.0; }
                  }
                }
                """
            )


class TestNormalisation:
    def test_compound_assign_expanded(self):
        fn = lower(
            """
            kernel k(double a[4]) {
              a[0] += 2.0;
            }
            """
        )
        stmt = fn.body[0]
        assert isinstance(stmt, Assign)
        assert isinstance(stmt.value, BinOp) and stmt.value.op == "+"
        # The read reference is explicit.
        assert isinstance(stmt.value.left, ArrayRef)

    def test_loop_var_default_int(self):
        fn = lower(
            """
            kernel k(double a[4]) {
              #pragma acc loop seq
              for (i = 0; i < 4; i++) { a[i] = 0.0; }
            }
            """
        )
        loop = fn.body[0]
        assert loop.var.stype is I32
        assert loop.var.kind is SymbolKind.LOOPVAR


class TestTypeChecking:
    def test_assignment_to_loop_var_rejected(self):
        with pytest.raises(SemanticError, match="loop variable"):
            lower(
                """
                kernel k(double a[4]) {
                  #pragma acc loop seq
                  for (i = 0; i < 4; i++) { i = 2; }
                }
                """
            )

    def test_store_to_const_array_rejected(self):
        with pytest.raises(SemanticError, match="const"):
            lower("kernel k(const double a[4]) { a[0] = 1.0; }")

    def test_array_without_subscripts_rejected(self):
        with pytest.raises(SemanticError, match="without subscripts"):
            lower("kernel k(double a[4], double x) { x = a; }")

    def test_wrong_rank_rejected(self):
        with pytest.raises(SemanticError, match="rank"):
            lower("kernel k(double a[4][4]) { a[0] = 1.0; }")

    def test_float_subscript_rejected(self):
        with pytest.raises(SemanticError, match="non-integer subscript"):
            lower("kernel k(double a[4], double x) { a[x] = 1.0; }")

    def test_undeclared_identifier_rejected(self):
        with pytest.raises(SemanticError, match="undeclared"):
            lower("kernel k(double a[4]) { a[0] = qqq; }")

    def test_expr_type_promotion(self):
        fn = lower("kernel k(double a[4], int n) { a[0] = a[1] + n; }")
        stmt = fn.body[0]
        assert expr_type(stmt.value) is F64

    def test_non_zero_step_required(self):
        with pytest.raises(SemanticError, match="non-zero"):
            lower(
                """
                kernel k(double a[4]) {
                  #pragma acc loop seq
                  for (i = 0; i < 4; i += 0) { a[i] = 1.0; }
                }
                """
            )


class TestLoopTripCounts:
    def _loop(self, header):
        fn = lower(
            f"""
            kernel k(double a[100], int n) {{
              #pragma acc loop seq
              for ({header}) {{ a[0] = 1.0; }}
            }}
            """
        )
        return fn.body[0]

    def test_exclusive_upper(self):
        assert self._loop("i = 0; i < 10; i++").trip_count() == 10

    def test_inclusive_upper(self):
        assert self._loop("i = 1; i <= 10; i++").trip_count() == 10

    def test_strided(self):
        assert self._loop("i = 0; i < 10; i += 3").trip_count() == 4

    def test_downward(self):
        assert self._loop("i = 10; i > 0; i--").trip_count() == 10

    def test_downward_inclusive(self):
        assert self._loop("i = 10; i >= 1; i--").trip_count() == 10

    def test_empty(self):
        assert self._loop("i = 5; i < 5; i++").trip_count() == 0

    def test_symbolic_needs_env(self):
        loop = self._loop("i = 0; i < n; i++")
        assert loop.trip_count() is None
        assert loop.trip_count({"n": 7}) == 7

    def test_iter_values_match_trip_count(self):
        loop = self._loop("i = 0; i < 10; i += 3")
        assert len(list(loop.iter_values({}))) == loop.trip_count()


class TestModule:
    def test_function_lookup(self):
        mod = build_module(parse_program("kernel a() { } kernel b() { }"))
        assert mod.function("b").name == "b"
        with pytest.raises(KeyError):
            mod.function("c")

    def test_build_kernel_by_name(self):
        prog = parse_program("kernel a() { } kernel b() { }")
        assert build_kernel(prog, "b").name == "b"

    def test_regions_enumeration(self):
        fn = lower(
            """
            kernel k(double a[n], int n) {
              #pragma acc kernels loop gang vector(32)
              for (i = 0; i < n; i++) { a[i] = 1.0; }
              #pragma acc kernels loop gang vector(32)
              for (i = 0; i < n; i++) { a[i] = 2.0; }
            }
            """
        )
        assert len(fn.regions()) == 2
