"""Unit tests for IR expressions, rewriting helpers and the printer."""

import pytest

from repro.ir import (
    ArrayRef,
    BinOp,
    Call,
    Cast,
    F32,
    F64,
    FloatConst,
    I32,
    I64,
    IntConst,
    Select,
    UnOp,
    VarRef,
    array_refs,
    build_module,
    expr_type,
    fold_constants,
    format_expr,
    format_function,
    promote,
    rewrite,
    scalar_reads,
    substitute,
)
from repro.ir.symbols import ArrayInfo, Dim, Symbol, SymbolKind
from repro.lang import parse_program


def sym(name, stype=I32):
    return Symbol(name=name, stype=stype)


def arr(name):
    return Symbol(
        name=name, stype=F64, array=ArrayInfo(elem=F64, dims=(Dim(extent=10),))
    )


class TestStructuralEquality:
    def test_equal_refs_hash_equal(self):
        i = sym("i")
        b = arr("b")
        r1 = ArrayRef(b, (BinOp("+", VarRef(i), IntConst(1)),))
        r2 = ArrayRef(b, (BinOp("+", VarRef(i), IntConst(1)),))
        assert r1 == r2
        assert hash(r1) == hash(r2)

    def test_different_symbols_not_equal(self):
        i = sym("i")
        assert ArrayRef(arr("a"), (VarRef(i),)) != ArrayRef(arr("b"), (VarRef(i),))


class TestRewriting:
    def test_substitute_whole_subtree(self):
        i, t = sym("i"), sym("t", F64)
        b = arr("b")
        ref = ArrayRef(b, (VarRef(i),))
        e = BinOp("+", ref, ref)
        out = substitute(e, {ref: VarRef(t)})
        assert out == BinOp("+", VarRef(t), VarRef(t))

    def test_substitute_inside_indices(self):
        i, t = sym("i"), sym("t")
        b = arr("b")
        e = ArrayRef(b, (BinOp("+", VarRef(i), IntConst(0)),))
        out = rewrite(e, lambda n: VarRef(t) if n == VarRef(i) else None)
        assert out.indices[0] == BinOp("+", VarRef(t), IntConst(0))

    def test_walk_preorder(self):
        i = sym("i")
        e = BinOp("+", VarRef(i), IntConst(1))
        nodes = list(e.walk())
        assert nodes[0] is e
        assert len(nodes) == 3

    def test_collectors(self):
        i = sym("i")
        b = arr("b")
        e = BinOp("*", ArrayRef(b, (VarRef(i),)), VarRef(i))
        assert len(array_refs(e)) == 1
        assert len(scalar_reads(e)) == 2  # i inside the subscript + bare i


class TestFolding:
    def test_fold_addition(self):
        assert fold_constants(BinOp("+", IntConst(2), IntConst(3))) == IntConst(5)

    def test_fold_nested(self):
        e = BinOp("+", BinOp("-", IntConst(4), IntConst(1)), IntConst(0))
        assert fold_constants(e) == IntConst(3)

    def test_fold_zero_identity(self):
        i = sym("i")
        assert fold_constants(BinOp("+", VarRef(i), IntConst(0))) == VarRef(i)
        assert fold_constants(BinOp("-", VarRef(i), IntConst(0))) == VarRef(i)

    def test_no_float_folding(self):
        e = BinOp("+", FloatConst(0.1), FloatConst(0.2))
        assert fold_constants(e) == e

    def test_fold_unary_minus(self):
        assert fold_constants(UnOp("-", IntConst(3))) == IntConst(-3)


class TestTypes:
    def test_promotion_lattice(self):
        assert promote(I32, I32) is I32
        assert promote(I32, I64) is I64
        assert promote(I64, F32) is F32
        assert promote(F32, F64) is F64

    def test_registers_per_value(self):
        assert I32.registers == 1
        assert F64.registers == 2
        assert I64.registers == 2

    def test_relational_is_bool(self):
        i = sym("i")
        assert expr_type(BinOp("<", VarRef(i), IntConst(3))).bits == 32

    def test_intrinsic_promotes_int_arg(self):
        i = sym("i")
        assert expr_type(Call("sqrt", (VarRef(i),))) is F64

    def test_select_promotes_arms(self):
        i = sym("i")
        e = Select(VarRef(i), FloatConst(1.0), IntConst(2))
        assert expr_type(e) is F64

    def test_cast(self):
        i = sym("i")
        assert expr_type(Cast(F32, VarRef(i))) is F32


class TestPrinter:
    def test_minimal_parentheses(self):
        i = sym("i")
        e = BinOp("*", BinOp("+", VarRef(i), IntConst(1)), IntConst(2))
        assert format_expr(e) == "(i + 1) * 2"

    def test_no_redundant_parentheses(self):
        i = sym("i")
        e = BinOp("+", BinOp("*", VarRef(i), IntConst(2)), IntConst(1))
        assert format_expr(e) == "i * 2 + 1"

    def test_left_assoc_subtraction(self):
        i = sym("i")
        e = BinOp("-", VarRef(i), BinOp("-", VarRef(i), IntConst(1)))
        assert format_expr(e) == "i - (i - 1)"

    def test_float_suffix(self):
        assert format_expr(FloatConst(1.5, stype=F32)) == "1.5f"

    def test_round_trip_through_parser(self):
        """print(build(parse(x))) == print(build(parse(print(build(parse(x))))))"""
        src = """
        kernel k(const double b[1:n][0:m], double a[n][m], int n, int m) {
          #pragma acc kernels loop gang vector(64)
          for (i = 1; i < n - 1; i++) {
            #pragma acc loop seq
            for (j = 1; j < m - 1; j++) {
              double t = b[i][j] * 2.0 - b[i][j-1];
              a[i][j] = t / (1.0 + t * t);
            }
          }
        }
        """
        fn1 = build_module(parse_program(src)).functions[0]
        text1 = format_function(fn1)
        fn2 = build_module(parse_program(text1)).functions[0]
        text2 = format_function(fn2)
        assert text1 == text2
