"""Hash-consed expression IR: `intern_expr` canonicalises structurally
equal trees to one instance, so equality hits the identity fast path and
repeated hashing reuses the cached digest."""

from repro.ir import build_module, intern_expr, intern_table_size
from repro.ir.expr import _INTERN, BinOp, FloatConst, IntConst, VarRef
from repro.ir.symbols import Symbol
from repro.ir.types import F64
from repro.lang import parse_program

SRC = """
kernel k(double a[n], const double b[n], int n) {
  #pragma acc kernels loop gang vector(64)
  for (i = 0; i < n; i++) { a[i] = b[i] * 2.0 + b[i] * 2.0; }
}
"""


def _tree(sym):
    return BinOp("+", BinOp("*", VarRef(sym), FloatConst(2.0)), IntConst(1))


class TestInterning:
    def test_equal_trees_become_one_object(self):
        sym = Symbol("x", F64)
        assert intern_expr(_tree(sym)) is intern_expr(_tree(sym))

    def test_distinct_symbols_do_not_unify(self):
        """Symbols compare by identity: same-named symbols from different
        scopes must stay distinct through interning."""
        a = intern_expr(_tree(Symbol("x", F64)))
        b = intern_expr(_tree(Symbol("x", F64)))
        assert a is not b

    def test_interning_is_bottom_up(self):
        sym = Symbol("x", F64)
        a = intern_expr(BinOp("+", VarRef(sym), IntConst(1)))
        b = intern_expr(BinOp("-", VarRef(sym), IntConst(1)))
        assert a.left is b.left
        assert a.right is b.right

    def test_hash_is_cached_after_first_use(self):
        e = _tree(Symbol("x", F64))
        assert e._hash == -1
        h = hash(e)
        assert e._hash == h
        assert hash(e) == h

    def test_table_is_bounded(self):
        import repro.ir.expr as expr_mod

        old_max = expr_mod._INTERN_MAX
        expr_mod._INTERN_MAX = 8
        try:
            _INTERN.clear()
            survivors = [intern_expr(IntConst(i)) for i in range(20)]
            assert intern_table_size() <= 8
            # previously interned nodes stay valid objects after the wipe
            assert all(s.value == i for i, s in enumerate(survivors))
        finally:
            expr_mod._INTERN_MAX = old_max
            _INTERN.clear()

    def test_builder_interns_duplicate_subtrees(self):
        """The front end interns statement-level expressions: the two
        `b[i] * 2.0` reads in SRC share one node."""
        fn = build_module(parse_program(SRC)).functions[0]
        loop = fn.body[0].body[0]
        rhs = loop.body[0].value
        assert rhs.left is rhs.right
