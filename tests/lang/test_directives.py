"""Unit tests for OpenACC directive parsing, including the proposed
``dim`` and ``small`` clauses (paper Section IV)."""

import pytest

from repro.lang import DirectiveError, parse_directive
from repro.lang.directives import ComputeDirective, DimGroup, DimSpec, LoopDirective


class TestComputeConstructs:
    def test_plain_kernels(self):
        d = parse_directive("pragma acc kernels")
        assert isinstance(d, ComputeDirective)
        assert d.construct == "kernels"
        assert d.combined_loop is None

    def test_plain_parallel(self):
        d = parse_directive("pragma acc parallel")
        assert d.construct == "parallel"

    def test_non_acc_pragma_returns_none(self):
        assert parse_directive("pragma omp parallel for") is None
        assert parse_directive("pragma once") is None

    def test_unknown_construct_raises(self):
        with pytest.raises(DirectiveError):
            parse_directive("pragma acc teams")

    def test_data_clauses(self):
        d = parse_directive("pragma acc kernels copyin(a, b) copyout(c) copy(d)")
        assert d.data["copyin"] == ("a", "b")
        assert d.data["copyout"] == ("c",)
        assert d.data["copy"] == ("d",)

    def test_data_clause_with_subarray_bounds(self):
        d = parse_directive("pragma acc parallel copyin(a[0:n], b[1:m])")
        assert d.data["copyin"] == ("a", "b")

    def test_num_gangs_and_vector_length(self):
        d = parse_directive("pragma acc parallel num_gangs(128) vector_length(256)")
        assert d.num_gangs == 128
        assert d.vector_length == 256

    def test_repeated_data_clause_accumulates(self):
        d = parse_directive("pragma acc kernels copyin(a) copyin(b)")
        assert d.data["copyin"] == ("a", "b")


class TestCombinedConstruct:
    def test_kernels_loop_combined(self):
        d = parse_directive("pragma acc kernels loop gang vector(64)")
        assert isinstance(d, ComputeDirective)
        assert d.combined_loop is not None
        assert d.combined_loop.gang is True
        assert d.combined_loop.vector == 64

    def test_paper_figure8_style(self):
        # '!$acc kernels loop gang(NY/2) vector(2)' — C spelling.
        d = parse_directive("pragma acc kernels loop gang(32) vector(2)")
        assert d.combined_loop.gang == 32
        assert d.combined_loop.vector == 2

    def test_clauses_after_loop_keyword_route_correctly(self):
        d = parse_directive(
            "pragma acc kernels loop gang vector(64) small(a) dim([n](a))"
        )
        assert d.small == ("a",)
        assert len(d.dim_groups) == 1
        assert d.combined_loop.vector == 64

    def test_gang_size_expression_constant_folds(self):
        # Paper Fig. 8 uses gang((NX-1+63)/64); with literals this folds.
        d = parse_directive("pragma acc kernels loop gang((127+63)/64) vector(64)")
        assert d.combined_loop.gang == (127 + 63) // 64

    def test_gang_size_symbolic_kept_as_text(self):
        d = parse_directive("pragma acc kernels loop gang((NX-1+63)/64)")
        assert isinstance(d.combined_loop.gang, str)
        assert "NX" in d.combined_loop.gang


class TestLoopConstruct:
    def test_seq(self):
        d = parse_directive("pragma acc loop seq")
        assert isinstance(d, LoopDirective)
        assert d.seq
        assert not d.is_parallel

    def test_gang_vector_parallel(self):
        d = parse_directive("pragma acc loop gang vector(128)")
        assert d.is_parallel

    def test_independent(self):
        d = parse_directive("pragma acc loop independent")
        assert d.independent
        assert d.is_parallel

    def test_collapse(self):
        d = parse_directive("pragma acc loop gang collapse(2)")
        assert d.collapse == 2

    def test_collapse_requires_positive_int(self):
        with pytest.raises(DirectiveError):
            parse_directive("pragma acc loop collapse(n)")

    def test_reduction(self):
        d = parse_directive("pragma acc loop vector reduction(+:sum)")
        assert d.reductions[0].op == "+"
        assert d.reductions[0].var == "sum"

    @pytest.mark.parametrize("op", ["+", "*", "max", "min"])
    def test_reduction_ops(self, op):
        d = parse_directive(f"pragma acc loop reduction({op}:acc)")
        assert d.reductions[0].op == op

    def test_unknown_reduction_op_raises(self):
        from repro.lang import MiniAccError

        with pytest.raises(MiniAccError):
            parse_directive("pragma acc loop reduction(^:x)")

    def test_private(self):
        d = parse_directive("pragma acc loop gang private(t1, t2)")
        assert d.private == ("t1", "t2")

    def test_worker(self):
        d = parse_directive("pragma acc loop worker(4)")
        assert d.worker == 4

    def test_unknown_loop_clause_raises(self):
        with pytest.raises(DirectiveError):
            parse_directive("pragma acc loop tile(2)")


class TestDimClause:
    """Section IV-A: dim declares arrays sharing identical dimensions."""

    def test_c_style_with_lengths(self):
        d = parse_directive("pragma acc kernels dim([nx][ny](a, b, c))")
        (group,) = d.dim_groups
        assert group.arrays == ("a", "b", "c")
        assert group.dims == (
            DimSpec(extent="nx", lower=0),
            DimSpec(extent="ny", lower=0),
        )

    def test_fortran_style_with_bounds(self):
        # '!$acc kernels dim((0:NX, 0:NY, 0:NZ)(vz_1, vz_2, vz_3))'
        d = parse_directive("pragma acc kernels dim((0:NX, 0:NY, 0:NZ)(vz_1, vz_2, vz_3))")
        (group,) = d.dim_groups
        assert group.arrays == ("vz_1", "vz_2", "vz_3")
        assert group.dims[0] == DimSpec(extent="NX", lower=0)
        assert len(group.dims) == 3

    def test_fortran_style_nonzero_lower_bound(self):
        d = parse_directive("pragma acc kernels dim((1:n, 1:m)(a, b))")
        assert d.dim_groups[0].dims == (
            DimSpec(extent="n", lower=1),
            DimSpec(extent="m", lower=1),
        )

    def test_arrays_only_form(self):
        # '!$acc kernels dim( (vz_1, vz_2, vz_3))' — dims from dope vector.
        d = parse_directive("pragma acc kernels dim((vz_1, vz_2, vz_3))")
        (group,) = d.dim_groups
        assert group.arrays == ("vz_1", "vz_2", "vz_3")
        assert group.dims == ()

    def test_multiple_groups(self):
        d = parse_directive("pragma acc kernels dim([n](a, b), [m](c, d))")
        assert len(d.dim_groups) == 2
        assert d.dim_groups[0].arrays == ("a", "b")
        assert d.dim_groups[1].arrays == ("c", "d")

    def test_trailing_comma_in_group_tolerated(self):
        # The paper's own syntax listing shows 'dim(...(A1,...,),...)'.
        d = parse_directive("pragma acc kernels dim([n](a, b,))")
        assert d.dim_groups[0].arrays == ("a", "b")

    def test_integer_extents(self):
        d = parse_directive("pragma acc kernels dim([64][32](a))")
        assert d.dim_groups[0].dims == (
            DimSpec(extent=64, lower=0),
            DimSpec(extent=32, lower=0),
        )

    def test_empty_dim_raises(self):
        with pytest.raises(DirectiveError):
            parse_directive("pragma acc kernels dim()")

    def test_group_without_arrays_raises(self):
        with pytest.raises(DirectiveError):
            parse_directive("pragma acc kernels dim([n]())")


class TestSmallClause:
    """Section IV-B: small declares arrays with < 4GB extent (32-bit offsets)."""

    def test_small_names(self):
        d = parse_directive("pragma acc kernels small(vz_1, vz_2, vz_3)")
        assert d.small == ("vz_1", "vz_2", "vz_3")

    def test_small_on_parallel(self):
        d = parse_directive("pragma acc parallel small(a)")
        assert d.small == ("a",)

    def test_small_combined_with_dim(self):
        d = parse_directive(
            "pragma acc kernels dim((0:NX, 0:NY, 0:NZ)(vz_1, vz_2, vz_3)) "
            "small(vz_1, vz_2, vz_3)"
        )
        assert d.small == ("vz_1", "vz_2", "vz_3")
        assert d.dim_groups[0].arrays == ("vz_1", "vz_2", "vz_3")

    def test_repeated_small_accumulates(self):
        d = parse_directive("pragma acc kernels small(a) small(b)")
        assert d.small == ("a", "b")
