"""Unit tests for the MiniACC lexer."""

import pytest

from repro.lang import LexError, tokenize
from repro.lang.tokens import TokenKind


def kinds(src):
    return [t.kind for t in tokenize(src)]


def values(src):
    return [t.value for t in tokenize(src)[:-1]]


class TestBasicTokens:
    def test_empty_source_yields_eof(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind is TokenKind.EOF

    def test_identifiers_and_keywords(self):
        toks = tokenize("kernel foo double bar_2")
        assert [t.kind for t in toks[:-1]] == [
            TokenKind.KEYWORD,
            TokenKind.IDENT,
            TokenKind.KEYWORD,
            TokenKind.IDENT,
        ]

    def test_integer_literal(self):
        toks = tokenize("42")
        assert toks[0].kind is TokenKind.INT_LIT
        assert toks[0].value == "42"

    def test_long_suffix(self):
        toks = tokenize("42L")
        assert toks[0].kind is TokenKind.INT_LIT
        assert toks[0].value == "42L"

    @pytest.mark.parametrize(
        "lit", ["3.14", "1.", "1e9", "2.5e-3", "1E+6", "0.5f", "7f" if False else "3.0f"]
    )
    def test_float_literals(self, lit):
        toks = tokenize(lit)
        assert toks[0].kind is TokenKind.FLOAT_LIT

    def test_float_suffix_marks_single_precision(self):
        toks = tokenize("2.5f")
        assert toks[0].value.endswith("f")

    def test_member_like_dot_is_error(self):
        with pytest.raises(LexError):
            tokenize("a . b".replace(" ", ""))


class TestOperators:
    def test_multi_char_operators_maximal_munch(self):
        toks = tokenize("<= >= == != && || += -= *= /= ++ --")
        expected = [
            TokenKind.LE,
            TokenKind.GE,
            TokenKind.EQ,
            TokenKind.NE,
            TokenKind.AND_AND,
            TokenKind.OR_OR,
            TokenKind.PLUS_ASSIGN,
            TokenKind.MINUS_ASSIGN,
            TokenKind.STAR_ASSIGN,
            TokenKind.SLASH_ASSIGN,
            TokenKind.PLUS_PLUS,
            TokenKind.MINUS_MINUS,
        ]
        assert [t.kind for t in toks[:-1]] == expected

    def test_single_char_operators(self):
        toks = tokenize("+-*/%<>!&")
        assert len(toks) == 10  # 9 ops + EOF

    def test_adjacent_plus_and_assign_not_merged(self):
        # 'a+ =b' is PLUS then ASSIGN, not PLUS_ASSIGN.
        toks = tokenize("a+ =b")
        assert [t.kind for t in toks[:-1]] == [
            TokenKind.IDENT,
            TokenKind.PLUS,
            TokenKind.ASSIGN,
            TokenKind.IDENT,
        ]


class TestComments:
    def test_line_comment_skipped(self):
        assert values("a // comment\n b") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert values("a /* x\n y */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("a /* oops")


class TestPragmas:
    def test_pragma_token_captures_text(self):
        toks = tokenize("#pragma acc kernels loop gang vector(64)\n x = 1;")
        assert toks[0].kind is TokenKind.PRAGMA
        assert toks[0].value == "pragma acc kernels loop gang vector(64)"

    def test_pragma_continuation_lines_joined(self):
        src = "#pragma acc kernels \\\n    small(a, b)\nx = 1;"
        toks = tokenize(src)
        assert toks[0].kind is TokenKind.PRAGMA
        assert "small(a, b)" in toks[0].value
        assert "\\" not in toks[0].value

    def test_code_after_pragma_line_lexes_normally(self):
        toks = tokenize("#pragma acc loop seq\nfor")
        assert toks[1].kind is TokenKind.KEYWORD
        assert toks[1].value == "for"


class TestLocations:
    def test_line_and_column_tracking(self):
        toks = tokenize("a\n  b")
        assert (toks[0].loc.line, toks[0].loc.column) == (1, 1)
        assert (toks[1].loc.line, toks[1].loc.column) == (2, 3)

    def test_filename_propagates(self):
        toks = tokenize("x", filename="foo.acc")
        assert toks[0].loc.filename == "foo.acc"

    def test_lex_error_has_location(self):
        with pytest.raises(LexError) as exc:
            tokenize("x @")
        assert exc.value.loc.column == 3
