"""Unit tests for the MiniACC parser."""

import pytest

from repro.lang import (
    AssignStmt,
    Binary,
    CallExpr,
    DeclStmt,
    FloatLit,
    ForStmt,
    IfStmt,
    Index,
    IntLit,
    Name,
    ParseError,
    RegionStmt,
    ReturnStmt,
    Ternary,
    Unary,
    parse_program,
)


def parse_kernel_body(body_src, params="double a[n], int n"):
    prog = parse_program(f"kernel k({params}) {{ {body_src} }}")
    return prog.kernel("k").body


def parse_expr(expr_src):
    (stmt,) = parse_kernel_body(f"x = {expr_src};", params="double x")
    return stmt.value


class TestKernelDecls:
    def test_empty_kernel(self):
        prog = parse_program("kernel k() { }")
        assert prog.kernel("k").params == ()
        assert prog.kernel("k").body == []

    def test_multiple_kernels(self):
        prog = parse_program("kernel a() { } kernel b() { }")
        assert [k.name for k in prog.kernels] == ["a", "b"]

    def test_missing_kernel_raises_keyerror(self):
        prog = parse_program("kernel a() { }")
        with pytest.raises(KeyError):
            prog.kernel("zzz")

    def test_scalar_params(self):
        prog = parse_program("kernel k(double x, int n, float f, long l) { }")
        params = prog.kernel("k").params
        assert [p.type_name for p in params] == ["double", "int", "float", "long"]
        assert not any(p.is_array for p in params)

    def test_array_param_with_symbolic_dims(self):
        prog = parse_program("kernel k(double a[nx][ny], int nx, int ny) { }")
        a = prog.kernel("k").params[0]
        assert a.is_array and not a.is_pointer
        assert len(a.dims) == 2
        assert isinstance(a.dims[0].extent, Name)
        assert a.dims[0].lower is None

    def test_array_param_with_lower_bounds(self):
        # Fortran-allocatable model: 'double a[1:nx][1:ny]'.
        prog = parse_program("kernel k(double a[1:nx][1:ny], int nx, int ny) { }")
        a = prog.kernel("k").params[0]
        assert isinstance(a.dims[0].lower, IntLit)
        assert a.dims[0].lower.value == 1

    def test_static_array_param(self):
        prog = parse_program("kernel k(double a[64][64]) { }")
        a = prog.kernel("k").params[0]
        assert isinstance(a.dims[0].extent, IntLit)
        assert a.dims[0].extent.value == 64

    def test_pointer_param(self):
        prog = parse_program("kernel k(double * restrict p) { }")
        p = prog.kernel("k").params[0]
        assert p.is_pointer and p.is_restrict

    def test_const_param(self):
        prog = parse_program("kernel k(const double a[n], int n) { }")
        assert prog.kernel("k").params[0].is_const

    def test_pointer_and_dims_rejected(self):
        with pytest.raises(ParseError):
            parse_program("kernel k(double *a[n], int n) { }")


class TestStatements:
    def test_simple_assign(self):
        (stmt,) = parse_kernel_body("a[0] = 1.0;")
        assert isinstance(stmt, AssignStmt)
        assert stmt.op is None
        assert isinstance(stmt.target, Index)

    def test_compound_assigns(self):
        stmts = parse_kernel_body("a[0] += 1.0; a[1] -= 2.0; a[2] *= 3.0; a[3] /= 4.0;")
        assert [s.op for s in stmts] == ["+", "-", "*", "/"]

    def test_increment_statement(self):
        (stmt,) = parse_kernel_body("x++;", params="int x")
        assert stmt.op == "+"
        assert isinstance(stmt.value, IntLit)

    def test_declaration_with_init(self):
        (stmt,) = parse_kernel_body("double t = 0.5;")
        assert isinstance(stmt, DeclStmt)
        assert stmt.type_name == "double"
        assert isinstance(stmt.init, FloatLit)

    def test_multi_declarator_flattened(self):
        stmts = parse_kernel_body("double t1, t2, t3;")
        assert len(stmts) == 3
        assert all(isinstance(s, DeclStmt) for s in stmts)
        assert [s.name for s in stmts] == ["t1", "t2", "t3"]

    def test_return_statement(self):
        (stmt,) = parse_kernel_body("return;")
        assert isinstance(stmt, ReturnStmt)

    def test_if_else(self):
        (stmt,) = parse_kernel_body("if (n > 0) { a[0] = 1.0; } else { a[0] = 2.0; }")
        assert isinstance(stmt, IfStmt)
        assert len(stmt.then_body) == 1
        assert len(stmt.else_body) == 1

    def test_else_if_chain(self):
        (stmt,) = parse_kernel_body(
            "if (n > 0) a[0] = 1.0; else if (n < 0) a[0] = 2.0; else a[0] = 3.0;"
        )
        assert isinstance(stmt.else_body[0], IfStmt)

    def test_naked_block_rejected(self):
        with pytest.raises(ParseError):
            parse_kernel_body("{ a[0] = 1.0; }")


class TestForLoops:
    def test_canonical_loop(self):
        (loop,) = parse_kernel_body("for (i = 0; i < n; i++) a[i] = 0.0;")
        assert isinstance(loop, ForStmt)
        assert loop.var == "i"
        assert loop.cond_op == "<"
        assert isinstance(loop.step, IntLit) and loop.step.value == 1

    def test_inclusive_bound(self):
        (loop,) = parse_kernel_body("for (i = 1; i <= n; i++) a[i] = 0.0;")
        assert loop.cond_op == "<="

    def test_inline_declared_loop_var(self):
        (loop,) = parse_kernel_body("for (int i = 0; i < n; i++) a[i] = 0.0;")
        assert loop.var == "i"

    def test_strided_loop(self):
        (loop,) = parse_kernel_body("for (i = 0; i < n; i += 2) a[i] = 0.0;")
        assert isinstance(loop.step, IntLit) and loop.step.value == 2

    def test_downward_loop(self):
        (loop,) = parse_kernel_body("for (i = n; i > 0; i--) a[i] = 0.0;")
        assert isinstance(loop.step, IntLit) and loop.step.value == -1

    def test_i_equals_i_plus_c_increment(self):
        (loop,) = parse_kernel_body("for (i = 0; i < n; i = i + 1) a[i] = 0.0;")
        assert isinstance(loop.step, IntLit) and loop.step.value == 1

    def test_mismatched_condition_variable_rejected(self):
        with pytest.raises(ParseError):
            parse_kernel_body("for (i = 0; j < n; i++) a[i] = 0.0;")

    def test_mismatched_increment_variable_rejected(self):
        with pytest.raises(ParseError):
            parse_kernel_body("for (i = 0; i < n; j++) a[i] = 0.0;")

    def test_nested_loops(self):
        (outer,) = parse_kernel_body(
            "for (i = 0; i < n; i++) { for (j = 0; j < n; j++) { a[i] = 0.0; } }"
        )
        inner = outer.body[0]
        assert isinstance(inner, ForStmt)
        assert inner.var == "j"


class TestPragmaAttachment:
    def test_loop_pragma_attaches_to_for(self):
        (loop,) = parse_kernel_body("#pragma acc loop seq\nfor (i = 0; i < n; i++) a[i] = 0.0;")
        assert loop.directive is not None
        assert loop.directive.seq

    def test_loop_pragma_without_for_rejected(self):
        with pytest.raises(ParseError):
            parse_kernel_body("#pragma acc loop seq\na[0] = 1.0;")

    def test_kernels_region_wraps_block(self):
        (region,) = parse_kernel_body(
            "#pragma acc kernels\n{ for (i = 0; i < n; i++) a[i] = 0.0; }"
        )
        assert isinstance(region, RegionStmt)
        assert isinstance(region.body[0], ForStmt)

    def test_combined_kernels_loop(self):
        (region,) = parse_kernel_body(
            "#pragma acc kernels loop gang vector(64)\nfor (i = 0; i < n; i++) a[i] = 0.0;"
        )
        assert isinstance(region, RegionStmt)
        loop = region.body[0]
        assert loop.directive.vector == 64

    def test_combined_construct_requires_for(self):
        with pytest.raises(ParseError):
            parse_kernel_body("#pragma acc kernels loop gang\na[0] = 1.0;")

    def test_non_acc_pragma_skipped(self):
        stmts = parse_kernel_body("#pragma unroll\na[0] = 1.0;")
        assert len(stmts) == 1
        assert isinstance(stmts[0], AssignStmt)

    def test_region_inside_loop_nest_structure(self):
        src = """
        #pragma acc kernels loop gang vector(2)
        for (j = 1; j < n; j++) {
          #pragma acc loop seq
          for (i = 1; i < n; i++) {
            a[i] += a[i-1];
          }
        }
        """
        (region,) = parse_kernel_body(src)
        outer = region.body[0]
        inner = outer.body[0]
        assert inner.directive.seq


class TestExpressions:
    def test_precedence_mul_over_add(self):
        e = parse_expr("1 + 2 * 3")
        assert isinstance(e, Binary) and e.op == "+"
        assert isinstance(e.right, Binary) and e.right.op == "*"

    def test_left_associativity(self):
        e = parse_expr("1 - 2 - 3")
        assert e.op == "-"
        assert isinstance(e.left, Binary)
        assert isinstance(e.right, IntLit) and e.right.value == 3

    def test_parentheses_override(self):
        e = parse_expr("(1 + 2) * 3")
        assert e.op == "*"
        assert isinstance(e.left, Binary) and e.left.op == "+"

    def test_unary_minus(self):
        e = parse_expr("-x")
        assert isinstance(e, Unary) and e.op == "-"

    def test_unary_plus_is_identity(self):
        e = parse_expr("+x")
        assert isinstance(e, Name)

    def test_comparison_chain(self):
        e = parse_expr("a1 < 2 == 1")  # (a1 < 2) == 1
        assert e.op == "=="

    def test_logical_ops(self):
        e = parse_expr("a1 && b1 || c1")
        assert e.op == "||"

    def test_ternary(self):
        e = parse_expr("c1 ? 1.0 : 2.0")
        assert isinstance(e, Ternary)

    def test_multi_dim_index(self):
        e = parse_expr("b[i][j][k-1]")
        assert isinstance(e, Index)
        assert len(e.indices) == 3
        assert isinstance(e.indices[2], Binary)

    def test_intrinsic_call(self):
        e = parse_expr("sqrt(x * x)")
        assert isinstance(e, CallExpr) and e.func == "sqrt"

    def test_two_arg_intrinsic(self):
        e = parse_expr("pow(x, 2.0)")
        assert len(e.args) == 2

    def test_cast(self):
        e = parse_expr("(double)n")
        assert isinstance(e, CallExpr) and e.func == "cast_double"

    def test_modulo(self):
        e = parse_expr("i % 4")
        assert e.op == "%"

    def test_paper_figure3_expression(self):
        # a[i] = (b[i] + b[i+1])/2
        (stmt,) = parse_kernel_body("a[i] = (b[i] + b[i+1])/2;", params="double a[n], double b[n], int n, int i")
        assert stmt.value.op == "/"
        assert stmt.value.left.op == "+"
