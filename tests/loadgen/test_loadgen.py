"""Open-loop load generator: deterministic schedules, the
coordinated-omission property (the one reason the harness exists), and
end-to-end SLO reports against in-process and socket brokers."""

import threading
import time
from concurrent.futures import Future

import pytest

from repro.loadgen import (
    LoadProfile,
    build_schedule,
    quick_profile,
    run_load,
    workload_specs,
)

QUICK_BENCH = ("303.ostencil", "355.seismic")


def profile(**overrides) -> LoadProfile:
    defaults = dict(
        rate_rps=40.0,
        duration_s=0.5,
        arrival="fixed",
        benchmarks=QUICK_BENCH,
        seed=0,
    )
    defaults.update(overrides)
    return LoadProfile(**defaults)


class TestSchedule:
    def test_same_seed_same_schedule(self):
        a = build_schedule(profile(arrival="poisson", seed=7))
        b = build_schedule(profile(arrival="poisson", seed=7))
        assert a == b

    def test_different_seed_different_schedule(self):
        a = build_schedule(profile(arrival="poisson", seed=1))
        b = build_schedule(profile(arrival="poisson", seed=2))
        assert [t for t, _ in a] != [t for t, _ in b]

    def test_fixed_arrivals_are_uniform(self):
        schedule = build_schedule(profile(rate_rps=10.0, duration_s=1.0))
        offsets = [t for t, _ in schedule]
        assert len(offsets) == 10
        gaps = [b - a for a, b in zip(offsets, offsets[1:])]
        assert all(abs(g - 0.1) < 1e-9 for g in gaps)

    def test_poisson_arrivals_average_the_rate(self):
        schedule = build_schedule(
            profile(arrival="poisson", rate_rps=200.0, duration_s=5.0, seed=3)
        )
        offsets = [t for t, _ in schedule]
        assert offsets == sorted(offsets)
        mean_gap = offsets[-1] / (len(offsets) - 1)
        assert mean_gap == pytest.approx(1.0 / 200.0, rel=0.15)
        # Exponential gaps: variance is on the order of the mean^2,
        # nothing like the zero-variance fixed pulse.
        gaps = [b - a for a, b in zip(offsets, offsets[1:])]
        assert max(gaps) > 3 * mean_gap

    def test_requests_draw_from_selected_benchmarks(self):
        specs, runnable = workload_specs(profile())
        assert {s.name for s in specs} == set(QUICK_BENCH)
        assert runnable, "quick benchmarks must be functionally runnable"
        schedule = build_schedule(profile())
        sources = {s.source for s in specs}
        for _, request in schedule:
            assert request["source"] in sources
            assert request["op"] in ("compile", "run")

    def test_run_requests_carry_pointer_lengths(self):
        schedule = build_schedule(
            profile(benchmarks=("303.ostencil",), mix={"run": 1.0})
        )
        for _, request in schedule:
            assert any(k.startswith("__len_") for k in request["env"])

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError, match="unknown benchmarks"):
            build_schedule(profile(benchmarks=("no.such.bench",)))

    def test_run_mix_without_runnable_specs_rejected(self):
        # 354.cg needs hand-built index arrays: compile-only.
        with pytest.raises(ValueError, match="runnable"):
            build_schedule(profile(benchmarks=("354.cg",), mix={"run": 1.0}))

    def test_bad_arrival_and_rates_rejected(self):
        with pytest.raises(ValueError):
            build_schedule(profile(arrival="bursty"))
        with pytest.raises(ValueError):
            build_schedule(profile(rate_rps=0.0))
        with pytest.raises(ValueError):
            build_schedule(profile(mix={}))

    def test_quick_profile_is_ci_sized(self):
        p = quick_profile()
        schedule = build_schedule(p)
        assert p.arrival == "fixed"
        assert len(schedule) == int(p.rate_rps * p.duration_s)
        assert schedule[-1][0] < p.duration_s


class _SerialBroker:
    """A fake one-worker broker whose service time is constant.  Requests
    queue behind each other exactly like a stalled server."""

    def __init__(self, service_s: float):
        self.service_s = service_s
        self._lock = threading.Lock()
        self._pool_depth = 0

    def submit(self, request: dict) -> Future:
        future: Future = Future()

        def work():
            with self._lock:  # serialize: one request at a time
                time.sleep(self.service_s)
            future.set_result(
                {"id": request.get("id"), "ok": True, "result": {}}
            )

        threading.Thread(target=work, daemon=True).start()
        return future


class TestCoordinatedOmission:
    def test_latency_is_charged_from_scheduled_arrival(self):
        """At 2x overload of a serial server, a closed-loop harness would
        report every latency ~= the 20ms service time (it waits before
        sending the next request, hiding the queue).  The open-loop
        schedule keeps arriving on time, so the backlog shows up in the
        recorded quantiles: the worst latency spans most of the run."""
        service_s = 0.02
        p = profile(rate_rps=100.0, duration_s=0.4, prewarm=False)
        report = run_load(p, broker=_SerialBroker(service_s))
        lat = report["latency_ms"]["overall"]
        assert report["requests"]["completed"] == 40
        # 40 requests x 20ms service = 800ms of work offered in 400ms:
        # the last arrival waits roughly the whole overhang.
        assert lat["max"] > 300.0
        assert lat["p50"] > 5 * service_s * 1000.0
        assert report["arrival"]["coordinated_omission_safe"] is True
        assert report["arrival"]["latency_basis"] == "scheduled_arrival"

    def test_underloaded_server_shows_service_time(self):
        service_s = 0.002
        p = profile(rate_rps=20.0, duration_s=0.5, prewarm=False)
        report = run_load(p, broker=_SerialBroker(service_s))
        lat = report["latency_ms"]["overall"]
        assert lat["p50"] < 50.0  # no backlog: latency ~ service time


class TestInProcessRun:
    def test_report_shape_and_slo_fields(self, tmp_path):
        from repro.serve.broker import Broker, BrokerConfig

        p = profile(rate_rps=20.0, duration_s=0.5)
        with Broker(
            BrokerConfig(workers=2, cache_dir=str(tmp_path / "cache"))
        ) as broker:
            report = run_load(p, broker=broker)
        requests = report["requests"]
        assert requests["scheduled"] == 10
        assert requests["completed"] == 10
        assert requests["errors"] == 0
        assert report["error_rate"] == 0.0
        assert report["queue_full_rate"] == 0.0
        assert report["prewarmed_sources"] == 2
        assert report["throughput_rps"] > 0
        lat = report["latency_ms"]
        assert lat["overall"]["count"] == 10
        for op_report in lat["per_op"].values():
            assert {"p50", "p99", "p999"} <= set(op_report)
        assert report["profile"] == p.as_dict()

    def test_prewarm_makes_compiles_warm(self, tmp_path):
        from repro.serve.broker import Broker, BrokerConfig

        p = profile(rate_rps=20.0, duration_s=0.5, mix={"compile": 1.0})
        with Broker(
            BrokerConfig(workers=2, cache_dir=str(tmp_path / "cache"))
        ) as broker:
            report = run_load(p, broker=broker)
        # Every measured compile hits the memory or shared disk tier.
        assert report["warm_hit_rate"] == 1.0

    def test_warm_hit_rate_is_none_without_compiles(self):
        p = profile(rate_rps=10.0, duration_s=0.3, mix={"run": 1.0},
                    prewarm=False)
        report = run_load(p, broker=_SerialBroker(0.001))
        assert report["warm_hit_rate"] is None

    def test_requires_exactly_one_target(self):
        p = profile()
        with pytest.raises(ValueError):
            run_load(p)
        with pytest.raises(ValueError):
            run_load(p, broker=_SerialBroker(0.0), socket_path="/tmp/x")

    def test_progress_callback_sees_every_completion(self):
        calls = []
        p = profile(rate_rps=20.0, duration_s=0.5, prewarm=False)
        run_load(
            p,
            broker=_SerialBroker(0.001),
            on_progress=lambda done, total: calls.append((done, total)),
        )
        assert len(calls) == 10
        assert calls[-1] == (10, 10)

    def test_write_report_round_trips(self, tmp_path):
        import json

        from repro.loadgen import write_report

        p = profile(rate_rps=10.0, duration_s=0.3, prewarm=False)
        report = run_load(p, broker=_SerialBroker(0.001))
        out = tmp_path / "slo.json"
        write_report(report, str(out))
        assert json.loads(out.read_text()) == json.loads(
            json.dumps(report)
        )


class _ShardStampingBroker(_SerialBroker):
    """A fake router: annotates each response with a round-robin
    ``shard`` index, the way the cluster router does."""

    def __init__(self, service_s: float, shards: int):
        super().__init__(service_s)
        self.shards = shards
        self._count = 0

    def _pick(self, count: int) -> int:
        return count % self.shards

    def submit(self, request: dict) -> Future:
        with self._lock:
            shard = self._pick(self._count)
            self._count += 1
        future: Future = Future()

        def work():
            time.sleep(self.service_s)
            future.set_result(
                {
                    "id": request.get("id"),
                    "ok": True,
                    "result": {},
                    "shard": shard,
                }
            )

        threading.Thread(target=work, daemon=True).start()
        return future


class TestTenantAndShards:
    def test_tenant_is_stamped_on_every_request(self):
        from repro.loadgen import build_schedule

        schedule = build_schedule(profile(tenant="acme"))
        assert schedule
        assert all(req["tenant"] == "acme" for _, req in schedule)

    def test_no_tenant_field_without_a_tenant(self):
        from repro.loadgen import build_schedule

        schedule = build_schedule(profile())
        assert all("tenant" not in req for _, req in schedule)

    def test_tenant_appears_in_the_report_profile(self):
        p = profile(rate_rps=10.0, duration_s=0.3, prewarm=False,
                    tenant="acme")
        report = run_load(p, broker=_SerialBroker(0.001))
        assert report["profile"]["tenant"] == "acme"

    def test_per_shard_counts_and_balance(self):
        p = profile(rate_rps=40.0, duration_s=0.5, prewarm=False)
        report = run_load(p, broker=_ShardStampingBroker(0.001, shards=2))
        assert report["per_shard"] == {"0": 10, "1": 10}
        balance = report["shard_balance"]
        assert balance["shards_seen"] == 2
        assert balance["fractions"] == {"0": 0.5, "1": 0.5}
        # Perfectly even: the busiest shard carries exactly its share.
        assert balance["balance_coefficient"] == pytest.approx(1.0)
        assert balance["max_abs_deviation"] == pytest.approx(0.0)

    def test_skew_shows_up_in_the_coefficient(self):
        class Skewed(_ShardStampingBroker):
            # 3 of every 4 requests land on shard 0.
            def _pick(self, count: int) -> int:
                return 0 if count % 4 else 1

        p = profile(rate_rps=40.0, duration_s=0.5, prewarm=False)
        report = run_load(p, broker=Skewed(0.001, shards=2))
        balance = report["shard_balance"]
        assert report["per_shard"] == {"0": 15, "1": 5}
        # Shard 0 carries 1.5x its fair share; the coefficient says so.
        assert balance["balance_coefficient"] == pytest.approx(1.5)
        assert balance["max_abs_deviation"] == pytest.approx(0.25)

    def test_unsharded_broker_reports_no_balance(self):
        p = profile(rate_rps=10.0, duration_s=0.3, prewarm=False)
        report = run_load(p, broker=_SerialBroker(0.001))
        assert report["per_shard"] == {}
        assert report["shard_balance"] is None


class TestSocketRun:
    def test_load_over_socket(self, tmp_path):
        from repro.serve.broker import Broker, BrokerConfig
        from repro.serve.daemon import SocketServer

        broker = Broker(
            BrokerConfig(workers=2, cache_dir=str(tmp_path / "cache"))
        )
        server = SocketServer(broker, str(tmp_path / "lg.sock"))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            p = profile(rate_rps=20.0, duration_s=0.5)
            report = run_load(p, socket_path=server.path)
            assert report["requests"]["completed"] == 10
            assert report["error_rate"] == 0.0
            assert report["warm_hit_rate"] == 1.0
        finally:
            server.close()
            thread.join(timeout=5)
            broker.drain()
