"""Metrics and tracer behaviour under concurrent broker-like load.

The registry's counters/gauges/histograms are shared by every serve
worker; a monitoring layer that loses increments under exactly the load
it exists to measure is worse than none.  These tests hammer the shared
structures from many threads and assert exact totals, then check the
span tracer keeps per-thread nesting consistent and exports
Perfetto-valid JSON.
"""

import json
import threading

from repro.obs.chrome import chrome_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer, request_collector, span, trace_scope

N_THREADS = 8
PER_THREAD = 2_500


def hammer(n_threads, work):
    threads = [
        threading.Thread(target=work, args=(i,)) for i in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestMetricsUnderThreads:
    def test_counter_increments_are_lossless(self):
        registry = MetricsRegistry()
        counter = registry.counter("serve.requests.run")

        def work(_):
            for _ in range(PER_THREAD):
                counter.inc()

        hammer(N_THREADS, work)
        assert counter.value == N_THREADS * PER_THREAD

    def test_gauge_add_is_lossless(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("serve.queue_depth")

        def work(_):
            for _ in range(PER_THREAD):
                gauge.add(1)
            for _ in range(PER_THREAD):
                gauge.add(-1)

        hammer(N_THREADS, work)
        assert gauge.value == 0

    def test_histogram_observations_are_lossless(self):
        registry = MetricsRegistry()
        hist = registry.histogram("serve.handle_ms")

        def work(i):
            for j in range(PER_THREAD):
                hist.observe(0.001 * (i + 1) * (j % 50 + 1))

        hammer(N_THREADS, work)
        assert hist.count == N_THREADS * PER_THREAD
        assert sum(hist.counts) == N_THREADS * PER_THREAD

    def test_log_histogram_observations_are_lossless(self):
        registry = MetricsRegistry()
        hist = registry.log_histogram("serve.latency_ms.run")

        def work(i):
            for j in range(PER_THREAD):
                hist.observe(0.01 * (i + j % 100 + 1))

        hammer(N_THREADS, work)
        assert hist.count == N_THREADS * PER_THREAD

    def test_get_or_create_race_yields_one_metric(self):
        registry = MetricsRegistry()
        results = []

        def work(_):
            results.append(registry.counter("cache.hits"))

        hammer(N_THREADS, work)
        assert len({id(c) for c in results}) == 1


class TestTracerUnderThreads:
    def test_span_nesting_consistent_per_thread(self):
        tracer = Tracer(enabled=True)
        depth = 5
        # Keep all threads alive at once: the OS reuses thread idents of
        # exited threads, which would legitimately merge tids.
        barrier = threading.Barrier(N_THREADS)

        def work(i):
            barrier.wait()
            with tracer.span(f"outer-{i}"):
                for j in range(depth):
                    with tracer.span(f"inner-{i}-{j}"):
                        pass

        hammer(N_THREADS, work)
        spans = tracer.spans
        assert len(spans) == N_THREADS * (depth + 1)
        # Per thread: the outer span strictly contains each inner one.
        by_tid = {}
        for s in spans:
            by_tid.setdefault(s.tid, []).append(s)
        assert len(by_tid) == N_THREADS
        for tid, group in by_tid.items():
            outers = [s for s in group if s.name.startswith("outer")]
            assert len(outers) == 1
            outer = outers[0]
            for inner in group:
                if inner is outer:
                    continue
                assert inner.ts_us >= outer.ts_us
                assert inner.ts_us + inner.dur_us <= outer.ts_us + outer.dur_us

    def test_trace_scopes_stay_thread_local(self):
        """Concurrent requests' spans never leak into each other's
        collector, and each carries its own trace_id."""
        collectors = {}
        barrier = threading.Barrier(N_THREADS)

        def work(i):
            collector = request_collector()
            collectors[i] = collector
            barrier.wait()
            with trace_scope(f"trace-{i}", collector):
                with span("handle", worker=i):
                    with span("execute", worker=i):
                        pass

        hammer(N_THREADS, work)
        for i, collector in collectors.items():
            spans = collector.spans
            assert sorted(s.name for s in spans) == ["execute", "handle"]
            assert all(s.args["trace_id"] == f"trace-{i}" for s in spans)
            assert all(s.args["worker"] == i for s in spans)

    def test_chrome_export_is_perfetto_valid_json(self):
        tracer = Tracer(enabled=True)

        def work(i):
            with tracer.span("request", worker=i):
                with tracer.span("execute"):
                    pass

        hammer(4, work)
        doc = chrome_trace(tracer)
        parsed = json.loads(json.dumps(doc))
        events = parsed["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 8
        for e in complete:
            assert isinstance(e["ts"], (int, float))
            assert isinstance(e["dur"], (int, float))
            assert e["dur"] >= 0
            assert isinstance(e["pid"], int) and isinstance(e["tid"], int)

    def test_max_spans_drops_are_counted_not_silent(self):
        collector = request_collector(max_spans=3)
        with trace_scope("t", collector):
            for i in range(10):
                with span(f"s{i}"):
                    pass
        assert len(collector.spans) == 3
        assert collector.dropped == 7
