"""Flight recorder: bounded retention of the slowest + errored request
traces, span-tree reconstruction, and Perfetto-loadable export."""

import json

from repro.obs.flight import (
    FlightRecorder,
    RequestRecord,
    span_tree,
    to_chrome,
)


def record(trace_id, duration_ms, ok=True, op="run", spans=None):
    return RequestRecord(
        trace_id=trace_id,
        op=op,
        ok=ok,
        duration_ms=duration_ms,
        error_code=None if ok else "internal",
        spans=spans or [],
    )


def span(name, ts, dur, tid=0, **args):
    return {"name": name, "cat": "t", "ts_us": ts, "dur_us": dur,
            "tid": tid, "args": args}


class TestRetention:
    def test_keeps_exactly_the_n_slowest(self):
        fr = FlightRecorder(max_slow=3, max_errors=8)
        for i in range(20):
            fr.record(record(f"t{i}", duration_ms=float(i)))
        assert [r.trace_id for r in fr.slowest()] == ["t19", "t18", "t17"]
        assert fr.recorded == 20

    def test_slow_ring_is_order_independent(self):
        fr = FlightRecorder(max_slow=2, max_errors=0)
        for duration in (5.0, 50.0, 1.0, 30.0, 2.0):
            fr.record(record(f"d{duration}", duration_ms=duration))
        assert [r.duration_ms for r in fr.slowest()] == [50.0, 30.0]

    def test_all_errors_kept_up_to_bound_newest_first(self):
        fr = FlightRecorder(max_slow=2, max_errors=3)
        for i in range(6):
            fr.record(record(f"e{i}", duration_ms=0.1, ok=False))
        assert [r.trace_id for r in fr.errors()] == ["e5", "e4", "e3"]

    def test_fast_errors_survive_slow_ring_displacement(self):
        fr = FlightRecorder(max_slow=2, max_errors=8)
        fr.record(record("fast-broken", duration_ms=0.01, ok=False))
        for i in range(10):
            fr.record(record(f"slow{i}", duration_ms=100.0 + i))
        assert fr.get("fast-broken") is not None

    def test_memory_bound_under_churn(self):
        fr = FlightRecorder(max_slow=4, max_errors=4)
        for i in range(10_000):
            fr.record(record(f"t{i}", duration_ms=float(i % 97), ok=i % 5 != 0))
        assert len(fr.slowest()) == 4
        assert len(fr.errors()) == 4
        assert fr.recorded == 10_000

    def test_get_by_trace_id_and_clear(self):
        fr = FlightRecorder(max_slow=4, max_errors=4)
        fr.record(record("a", duration_ms=5.0))
        assert fr.get("a").trace_id == "a"
        assert fr.get("missing") is None
        fr.clear()
        assert fr.get("a") is None and fr.recorded == 0

    def test_zero_bounds_retain_nothing(self):
        fr = FlightRecorder(max_slow=0, max_errors=0)
        fr.record(record("a", duration_ms=5.0, ok=False))
        assert fr.slowest() == [] and fr.errors() == []
        assert fr.recorded == 1


class TestSpanTree:
    def test_nesting_by_containment(self):
        spans = [
            span("root", 0.0, 100.0),
            span("child1", 5.0, 20.0),
            span("grandchild", 6.0, 5.0),
            span("child2", 50.0, 30.0),
        ]
        roots = span_tree(spans)
        assert [r["name"] for r in roots] == ["root"]
        kids = roots[0]["children"]
        assert [k["name"] for k in kids] == ["child1", "child2"]
        assert [g["name"] for g in kids[0]["children"]] == ["grandchild"]

    def test_threads_get_separate_trees(self):
        spans = [span("a", 0.0, 10.0, tid=0), span("b", 1.0, 5.0, tid=1)]
        roots = span_tree(spans)
        assert sorted(r["name"] for r in roots) == ["a", "b"]

    def test_record_as_dict_includes_tree(self):
        rec = record(
            "t", 10.0, spans=[span("outer", 0.0, 9.0), span("inner", 1.0, 2.0)]
        )
        d = rec.as_dict()
        assert d["span_tree"][0]["name"] == "outer"
        assert d["span_tree"][0]["children"][0]["name"] == "inner"


class TestChromeExport:
    def test_document_is_perfetto_shaped(self):
        rec = record(
            "abc", 12.0,
            spans=[span("request", 0.0, 12_000.0),
                   span("execute", 100.0, 900.0, elements=64)],
        )
        doc = to_chrome(rec)
        text = json.dumps(doc)  # must be JSON-serializable
        assert "traceEvents" in doc and "displayTimeUnit" in doc
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert any(e["name"] == "process_name" for e in meta)
        assert any(e["name"] == "thread_name" for e in meta)
        assert len(complete) == 2
        for e in complete:
            assert set(e) >= {"name", "cat", "ph", "ts", "dur", "pid", "tid"}
        assert doc["otherData"]["trace_id"] == "abc"
        assert "abc" in text

    def test_snapshot_shape(self):
        fr = FlightRecorder(max_slow=2, max_errors=2)
        fr.record(record("s", duration_ms=5.0))
        fr.record(record("e", duration_ms=1.0, ok=False))
        snap = fr.snapshot()
        assert snap["recorded"] == 2
        assert snap["retention"] == {"max_slow": 2, "max_errors": 2}
        assert {r["trace_id"] for r in snap["slowest"]} == {"s", "e"}
        assert [r["trace_id"] for r in snap["errors"]] == ["e"]
        json.dumps(snap)
