"""LogHistogram: bounded relative error, exact-in-the-HDR-sense
quantiles, clamping, merging, and concurrent observation."""

import math
import threading
from random import Random

import pytest

from repro.obs.hist import DEFAULT_SUB_BUCKETS, LogHistogram


def true_quantile(values, q):
    ordered = sorted(values)
    return ordered[max(0, math.ceil(q * len(ordered)) - 1)]


class TestQuantiles:
    def test_empty_histogram_reports_zero(self):
        h = LogHistogram("x")
        assert h.count == 0
        assert h.p50 == 0.0 and h.p99 == 0.0 and h.p999 == 0.0

    def test_single_value_is_every_quantile(self):
        h = LogHistogram("x")
        h.observe(42.0)
        for q in (0.01, 0.5, 0.99, 0.999, 1.0):
            assert h.quantile(q) == pytest.approx(42.0)

    def test_quantiles_within_relative_error_of_order_statistics(self):
        rng = Random(7)
        values = [rng.lognormvariate(0.0, 2.0) for _ in range(20_000)]
        h = LogHistogram("x")
        for v in values:
            h.observe(v)
        # One sub-bucket is a 2^(1/32)-1 ~ 2.2% relative step; clamping
        # to [min_seen, max_seen] can only tighten the estimate.
        tolerance = 2.0 ** (1.0 / DEFAULT_SUB_BUCKETS) - 1.0 + 1e-9
        for q in (0.5, 0.9, 0.99, 0.999):
            exact = true_quantile(values, q)
            estimate = h.quantile(q)
            assert abs(estimate - exact) / exact <= tolerance, (q, estimate, exact)

    def test_q1_is_exactly_max_seen(self):
        h = LogHistogram("x")
        for v in (0.5, 3.0, 17.25):
            h.observe(v)
        assert h.quantile(1.0) == 17.25

    def test_quantile_never_leaves_observed_range(self):
        h = LogHistogram("x")
        h.observe(5.0)
        h.observe(6.0)
        for q in (0.001, 0.5, 1.0):
            assert 5.0 <= h.quantile(q) <= 6.0

    def test_out_of_range_q_rejected(self):
        h = LogHistogram("x")
        with pytest.raises(ValueError):
            h.quantile(0.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)


class TestClampingAndGeometry:
    def test_values_outside_range_clamp_to_end_buckets(self):
        h = LogHistogram("x", min_value=1.0, max_value=100.0)
        h.observe(1e-9)
        h.observe(1e9)
        assert h.count == 2
        assert h.min_seen == 1e-9 and h.max_seen == 1e9
        # Clamped samples report from the end buckets: quantiles stay
        # inside the representable range rather than inventing precision.
        assert h.quantile(1.0) == pytest.approx(100.0, rel=0.05)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            LogHistogram("x", min_value=0.0, max_value=1.0)
        with pytest.raises(ValueError):
            LogHistogram("x", min_value=2.0, max_value=1.0)
        with pytest.raises(ValueError):
            LogHistogram("x", sub_buckets=0)

    def test_memory_is_bounded_and_flat(self):
        h = LogHistogram("x")
        before = len(h.counts)
        for i in range(10_000):
            h.observe(0.001 * (i + 1))
        assert len(h.counts) == before  # no per-sample allocation


class TestMergeZeroDict:
    def test_merge_equals_observing_everything_in_one(self):
        a, b, both = LogHistogram("a"), LogHistogram("b"), LogHistogram("ab")
        rng = Random(3)
        for _ in range(500):
            v = rng.expovariate(0.1)
            (a if rng.random() < 0.5 else b).observe(v)
            both.observe(v)
        a.merge(b)
        assert a.count == both.count
        assert a.counts == both.counts
        assert a.quantile(0.99) == both.quantile(0.99)

    def test_merge_rejects_different_geometry(self):
        a = LogHistogram("a")
        b = LogHistogram("b", sub_buckets=16)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_zero_resets_everything(self):
        h = LogHistogram("x")
        h.observe(1.0)
        h.zero()
        assert h.count == 0 and h.total == 0.0
        assert h.p99 == 0.0

    def test_as_dict_shape(self):
        h = LogHistogram("x")
        h.observe(2.0)
        h.observe(4.0)
        d = h.as_dict()
        assert d["type"] == "loghistogram"
        assert d["count"] == 2
        assert d["min"] == 2.0 and d["max"] == 4.0
        assert set(d) >= {"p50", "p90", "p99", "p999", "sum", "mean"}

    def test_empty_as_dict_is_all_zero(self):
        d = LogHistogram("x").as_dict()
        assert d["count"] == 0 and d["min"] == 0.0 and d["p999"] == 0.0


class TestConcurrency:
    def test_no_lost_observations_under_threads(self):
        h = LogHistogram("x")
        n_threads, per_thread = 8, 2_000

        def work(seed):
            rng = Random(seed)
            for _ in range(per_thread):
                h.observe(rng.uniform(0.01, 100.0))

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count == n_threads * per_thread
        assert sum(h.counts) == n_threads * per_thread
