"""Tests for the metrics registry (`repro.obs.metrics`)."""

import pytest

from repro.obs.metrics import (
    COUNT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_default_and_amount(self):
        c = Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_as_dict_integralizes_whole_values(self):
        c = Counter("c")
        c.inc(2)
        assert c.as_dict() == {"type": "counter", "value": 2}
        c.inc(0.25)
        assert c.as_dict() == {"type": "counter", "value": 2.25}


class TestGauge:
    def test_set_and_zero(self):
        g = Gauge("g")
        g.set(7)
        assert g.value == 7
        g.zero()
        assert g.value == 0


class TestHistogram:
    def test_boundaries_must_be_sorted_nonempty(self):
        with pytest.raises(ValueError):
            Histogram("h", boundaries=())
        with pytest.raises(ValueError):
            Histogram("h", boundaries=(2, 1))

    def test_observe_buckets_upper_inclusive(self):
        h = Histogram("h", boundaries=(1, 10, 100))
        for v in (0.5, 1, 5, 10, 99, 1000):
            h.observe(v)
        # bisect_left: value == boundary lands in that boundary's bucket.
        assert h.counts == [2, 2, 1, 1]
        assert h.count == 6
        assert h.cumulative() == {"le_1": 2, "le_10": 4, "le_100": 5, "le_inf": 6}

    def test_mean_and_zero(self):
        h = Histogram("h", boundaries=(1,))
        assert h.mean == 0.0
        h.observe(2)
        h.observe(4)
        assert h.mean == 3.0
        h.zero()
        assert h.count == 0 and h.total == 0.0 and h.counts == [0, 0]

    def test_float_boundary_keys(self):
        h = Histogram("h", boundaries=(0.5, 2))
        h.observe(0.1)
        assert list(h.cumulative()) == ["le_0.5", "le_2", "le_inf"]


class TestRegistry:
    def test_get_or_create_shares_instances(self):
        m = MetricsRegistry()
        a = m.counter("x", "first registration wins the help text")
        b = m.counter("x", "ignored")
        assert a is b
        assert a.help == "first registration wins the help text"

    def test_kind_mismatch_raises(self):
        m = MetricsRegistry()
        m.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            m.gauge("x")

    def test_names_sorted_and_get(self):
        m = MetricsRegistry()
        m.counter("b.two")
        m.gauge("a.one")
        assert m.names() == ["a.one", "b.two"]
        assert m.get("a.one").kind == "gauge"
        assert m.get("missing") is None

    def test_reset_zeroes_but_keeps_registrations(self):
        m = MetricsRegistry()
        c = m.counter("c")
        h = m.histogram("h", boundaries=COUNT_BUCKETS)
        c.inc(5)
        h.observe(3)
        m.reset()
        assert m.counter("c") is c and c.value == 0
        assert h.count == 0

    def test_as_dict_shape(self):
        m = MetricsRegistry()
        m.counter("c").inc()
        m.gauge("g").set(2)
        m.histogram("h").observe(1.0)
        d = m.as_dict()
        assert list(d) == ["c", "g", "h"]
        assert d["c"] == {"type": "counter", "value": 1}
        assert d["g"] == {"type": "gauge", "value": 2}
        assert d["h"]["type"] == "histogram"
        assert {"count", "sum", "mean", "buckets"} <= set(d["h"])

    def test_render_text_lists_metrics_and_informative_buckets(self):
        m = MetricsRegistry()
        m.counter("session.compilations").inc(3)
        m.histogram("wall", boundaries=(1, 10)).observe(5)
        text = m.render_text()
        assert "session.compilations" in text
        assert "counter" in text
        assert "le_10" in text
        assert "le_inf" in text
        # The empty le_1 bucket adds nothing and is elided.
        assert "le_1 " not in text
