"""Tests for the kernel execution profiler (`repro.obs.profiler`)."""

import json

import numpy as np

from repro.compiler.options import BASE, SMALL_DIM_SAFARA
from repro.compiler.session import CompilerSession
from repro.ir import build_module
from repro.lang import parse_program
from repro.obs.profiler import profile_program, profile_source

STENCIL = """
kernel demo(const double u[1:nz][1:ny][1:nx], double out[1:nz][1:ny][1:nx],
            int nx, int ny, int nz) {
  #pragma acc kernels loop gang vector(2) small(u, out) dim((1:nz,1:ny,1:nx)(u, out))
  for (j = 1; j < ny; j++) {
    #pragma acc loop gang vector(64)
    for (i = 1; i < nx; i++) {
      #pragma acc loop seq
      for (k = 1; k < nz; k++) {
        out[k][j][i] = u[k][j][i] + u[k-1][j][i];
      }
    }
  }
}
"""

SAXPY = """
kernel k(double a[n], const double b[n], int n) {
  #pragma acc kernels loop gang vector(64)
  for (i = 0; i < n; i++) { a[i] = 2.0 * b[i] + i; }
}
"""


class TestProfileProgram:
    def test_stencil_profile_fields(self):
        profile = profile_source(STENCIL, SMALL_DIM_SAFARA,
                                 session=CompilerSession())
        assert profile.function == "demo"
        assert profile.config == SMALL_DIM_SAFARA.name
        (k,) = profile.kernels
        assert k.kernel == "demo_k1"
        assert k.registers > 0
        assert k.raw_pressure > 0
        assert k.backend_compilations >= 2  # safara iterates the backend
        assert 0.0 < k.occupancy <= 1.0
        assert k.occupancy_limited_by in ("registers", "threads", "blocks", "warps")
        assert k.safara is not None
        assert k.safara["iterations"] >= 1
        assert k.safara["converged_reason"] in (
            "no-candidates", "registers-saturated", "candidates-exhausted"
        )

    def test_traffic_classifies_space_and_pattern(self):
        profile = profile_source(STENCIL, SMALL_DIM_SAFARA,
                                 session=CompilerSession())
        (k,) = profile.kernels
        by_array = {}
        for t in k.traffic:
            by_array.setdefault(t.array, []).append(t)
        # const input goes through the read-only cache under this config;
        # the output array is a plain global store.
        assert all(t.space == "readonly" for t in by_array["u"])
        assert all(t.space == "global" for t in by_array["out"])
        assert sum(t.stores for t in by_array["out"]) == 1
        assert sum(t.loads for t in by_array["u"]) >= 1
        patterns = {t.pattern for t in k.traffic}
        assert patterns <= {"coalesced", "uncoalesced", "uniform", "unknown"}

    def test_loop_decisions_cover_every_loop(self):
        profile = profile_source(STENCIL, SMALL_DIM_SAFARA,
                                 session=CompilerSession())
        (k,) = profile.kernels
        decisions = {l.var: l for l in k.loops}
        assert set(decisions) == {"i", "j", "k"}
        assert decisions["j"].parallel and decisions["j"].mode == "axis"
        assert decisions["i"].parallel and decisions["i"].mode == "axis"
        assert not decisions["k"].parallel and decisions["k"].mode == "seq"

    def test_base_config_has_no_safara_section(self):
        profile = profile_source(STENCIL, BASE, session=CompilerSession())
        (k,) = profile.kernels
        assert k.safara is None

    def test_as_dict_is_json_serialisable(self):
        profile = profile_source(STENCIL, SMALL_DIM_SAFARA,
                                 session=CompilerSession())
        d = json.loads(json.dumps(profile.as_dict()))
        assert d["function"] == "demo"
        assert d["kernels"][0]["traffic"]
        assert d["kernels"][0]["loops"]

    def test_render_mentions_key_sections(self):
        text = profile_source(STENCIL, SMALL_DIM_SAFARA,
                              session=CompilerSession()).render()
        assert "registers" in text
        assert "occupancy" in text
        assert "memory traffic" in text
        assert "vector planner" in text

    def test_profile_program_over_precompiled(self):
        session = CompilerSession()
        program = session.compile_source(SAXPY, BASE)
        profile = profile_program(program)
        (k,) = profile.kernels
        assert k.kernel == "k_k1"
        assert {t.array for t in k.traffic} == {"a", "b"}

    def test_execution_section_renders_when_attached(self):
        session = CompilerSession()
        profile = profile_source(SAXPY, BASE, session=session)
        fn = build_module(parse_program(SAXPY)).functions[0]
        _, stats, info = session.execute(
            fn, {"a": np.zeros(8), "b": np.ones(8), "n": 8}
        )
        profile.execution = {
            **info.as_dict(),
            "loads": stats.loads,
            "stores": stats.stores,
            "flops": stats.flops,
            "iterations": stats.iterations,
        }
        text = profile.render()
        assert "execution: executor=codegen" in text
        assert json.dumps(profile.as_dict())
