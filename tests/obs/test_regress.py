"""Tests for the benchmark-regression ledger (`benchmarks/regress.py`)."""

import importlib.util
import json
import pathlib

import pytest

REGRESS = (
    pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "regress.py"
)


@pytest.fixture(scope="module")
def regress():
    spec = importlib.util.spec_from_file_location("regress", REGRESS)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def quick_doc(regress):
    return regress.collect(quick=True)


class TestCollect:
    def test_quick_doc_shape(self, quick_doc):
        assert set(quick_doc) == {"version", "quick", "entries", "meta"}
        assert quick_doc["quick"] is True
        assert len(quick_doc["entries"]) == (
            len(quick_doc["meta"]["configs"]) * quick_doc["meta"]["benchmarks"]
        )
        for key, entry in quick_doc["entries"].items():
            assert "|" in key
            assert set(entry) == {
                "model_ms", "max_registers", "speedup_over_base"
            }
            assert entry["model_ms"] > 0
            assert entry["max_registers"] > 0
            assert entry["speedup_over_base"] > 0

    def test_base_cells_have_unit_speedup(self, quick_doc):
        base_cells = [
            e for k, e in quick_doc["entries"].items()
            if k.endswith("|OpenUH(base)")
        ]
        assert base_cells
        assert all(e["speedup_over_base"] == 1.0 for e in base_cells)

    def test_deterministic_across_runs(self, regress, quick_doc):
        again = regress.collect(quick=True)
        assert again["entries"] == quick_doc["entries"]

    def test_committed_ledger_matches_current_code(self, regress, quick_doc):
        """BENCH_obs.json at the repo root is the current code's output."""
        committed = json.loads(
            (REGRESS.parent.parent / "BENCH_obs.json").read_text()
        )
        for key, entry in quick_doc["entries"].items():
            assert committed["entries"][key] == entry, key


class TestCompare:
    def _doc(self, **entry):
        cell = {"model_ms": 100.0, "max_registers": 32,
                "speedup_over_base": 2.0}
        cell.update(entry)
        return {"entries": {"b|cfg": cell}}

    def test_no_regression_within_threshold(self, regress):
        old = self._doc()
        new = self._doc(model_ms=115.0, speedup_over_base=1.7,
                        max_registers=38)
        assert regress.compare(old, new) == []

    def test_model_time_regression_flagged(self, regress):
        problems = regress.compare(self._doc(), self._doc(model_ms=125.0))
        assert len(problems) == 1
        assert "model_ms" in problems[0]

    def test_speedup_drop_flagged(self, regress):
        problems = regress.compare(self._doc(),
                                   self._doc(speedup_over_base=1.5))
        assert len(problems) == 1
        assert "speedup_over_base" in problems[0]

    def test_register_growth_flagged(self, regress):
        problems = regress.compare(self._doc(), self._doc(max_registers=40))
        assert len(problems) == 1
        assert "max_registers" in problems[0]

    def test_improvements_never_flagged(self, regress):
        new = self._doc(model_ms=10.0, speedup_over_base=20.0,
                        max_registers=8)
        assert regress.compare(self._doc(), new) == []

    def test_new_and_removed_cells_ignored(self, regress):
        old = {"entries": {"gone|cfg": {"model_ms": 1.0}}}
        assert regress.compare(old, self._doc()) == []


class TestMain:
    def test_baseline_then_clean_rerun(self, regress, tmp_path, capsys):
        ledger = tmp_path / "ledger.json"
        assert regress.main(["--quick", "--output", str(ledger)]) == 0
        assert ledger.exists()
        assert regress.main(["--quick", "--output", str(ledger)]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_regression_fails_and_preserves_ledger(self, regress, tmp_path,
                                                   capsys):
        ledger = tmp_path / "ledger.json"
        assert regress.main(["--quick", "--output", str(ledger)]) == 0
        doc = json.loads(ledger.read_text())
        # Shrink a recorded model time so the (unchanged) new run looks
        # like a >20% slowdown against it.
        key = next(iter(doc["entries"]))
        doc["entries"][key]["model_ms"] /= 2.0
        ledger.write_text(json.dumps(doc))
        capsys.readouterr()
        assert regress.main(["--quick", "--output", str(ledger)]) == 1
        err = capsys.readouterr().err
        assert "model_ms regressed" in err
        assert json.loads(ledger.read_text())["entries"][key]["model_ms"] == (
            doc["entries"][key]["model_ms"]
        ), "a failing run must not rewrite the ledger"

    def test_partial_run_merges_into_existing_ledger(self, regress, tmp_path):
        ledger = tmp_path / "ledger.json"
        seed = {
            "version": 1,
            "entries": {"other|cfg": {"model_ms": 1.0, "max_registers": 2,
                                      "speedup_over_base": 1.0}},
            "meta": {},
        }
        ledger.write_text(json.dumps(seed))
        assert regress.main(["--quick", "--output", str(ledger)]) == 0
        merged = json.loads(ledger.read_text())
        assert "other|cfg" in merged["entries"]
        assert len(merged["entries"]) > 1

    def test_trace_flag_writes_chrome_trace(self, regress, tmp_path):
        ledger = tmp_path / "ledger.json"
        trace = tmp_path / "trace.json"
        assert regress.main([
            "--quick", "--output", str(ledger), "--trace", str(trace),
        ]) == 0
        doc = json.loads(trace.read_text())
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert "compile.function" in names and "pipeline" in names


class TestSloRow:
    @pytest.fixture(scope="class")
    def slo_row(self, regress):
        return regress.collect_slo()

    def test_row_gates_pass(self, regress, slo_row):
        assert regress.check_slo(slo_row) == []

    def test_row_is_coordinated_omission_safe(self, slo_row):
        assert slo_row["latency_basis"] == "scheduled_arrival"
        assert slo_row["coordinated_omission_safe"] is True

    def test_warm_window_hits_the_cache(self, slo_row):
        assert slo_row["error_rate"] == 0.0
        assert slo_row["warm_hit_rate"] >= 0.9
        assert slo_row["completed"] == slo_row["scheduled"]

    def test_check_slo_flags_each_violation(self, regress, slo_row):
        errored = dict(slo_row, error_rate=0.1)
        assert any("error rate" in p for p in regress.check_slo(errored))
        cold = dict(slo_row, warm_hit_rate=0.5)
        assert any("hit rate" in p for p in regress.check_slo(cold))
        slow = dict(slo_row, p99_ms=regress.SLO_P99_MS * 2)
        assert any("p99" in p for p in regress.check_slo(slow))
        closed_loop = dict(slo_row, latency_basis="send_time")
        assert any(
            "coordinated omission" in p
            for p in regress.check_slo(closed_loop)
        )
        lost = dict(slo_row, completed=slo_row["scheduled"] - 1)
        assert any("scheduled" in p for p in regress.check_slo(lost))


class TestTuneRow:
    @pytest.fixture(scope="class")
    def tune_row(self, regress):
        return regress.collect_tune()

    def test_row_shape_and_gates_pass(self, regress, tune_row):
        assert tune_row["benchmark"] == "355.seismic"
        assert regress.check_tune(tune_row) == []

    def test_tuned_config_beats_or_matches_the_default(self, tune_row):
        assert tune_row["tuned_ms"] <= tune_row["default_ms"]
        assert tune_row["speedup_over_default"] >= 1.0

    def test_warm_retune_is_compile_free(self, tune_row):
        assert tune_row["warm_evaluated"] == 0
        assert tune_row["warm_backend_compilations"] == 0
        assert tune_row["warm_ledger_hits"] == tune_row["trials"]

    def test_check_tune_flags_each_violation(self, regress, tune_row):
        slower = dict(tune_row, tuned_ms=tune_row["default_ms"] * 2)
        assert any("slower" in p for p in regress.check_tune(slower))
        recompiled = dict(tune_row, warm_evaluated=3)
        assert any("replay" in p for p in regress.check_tune(recompiled))
        backend = dict(tune_row, warm_backend_compilations=7)
        assert any("backend" in p for p in regress.check_tune(backend))
