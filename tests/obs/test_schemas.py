"""Golden-schema tests: the JSON surfaces other tools join on.

`--stats`, `--trace`, and `CompilerSession.metrics` are machine-readable
contracts — key sets and types are pinned here so downstream consumers
(the regression ledger, trace viewers, dashboards) don't silently break.
"""

import json

import pytest

from repro.cli import main
from repro.compiler.options import BASE, SMALL_DIM_SAFARA
from repro.compiler.session import CompileJob, CompilerSession
from repro.obs.chrome import chrome_trace
from repro.obs.tracer import Tracer

SRC = """
kernel demo(const double u[1:nz][1:ny][1:nx], double out[1:nz][1:ny][1:nx],
            int nx, int ny, int nz) {
  #pragma acc kernels loop gang vector(2) small(u, out) dim((1:nz,1:ny,1:nx)(u, out))
  for (j = 1; j < ny; j++) {
    #pragma acc loop gang vector(64)
    for (i = 1; i < nx; i++) {
      #pragma acc loop seq
      for (k = 1; k < nz; k++) {
        out[k][j][i] = u[k][j][i] + u[k-1][j][i];
      }
    }
  }
}
"""

STATS_KEYS = {
    "compilations", "timings", "feedback_optimizations",
    "pass_totals", "traces", "execution", "cache",
}
EXECUTION_KEYS = {
    "executions", "codegen", "vector", "scalar_fallbacks",
    "scalar_requested", "kernels",
}
CACHE_KEYS = {"entries", "maxsize", "hits", "misses", "evictions", "hit_rate"}
TRACE_KEYS = {"function", "config", "cache_key", "wall_ms", "regions"}
PASS_KEYS = {
    "pass", "ran", "wall_ms", "ir_before", "ir_after", "ir_delta",
    "registers_before", "registers_after", "register_delta",
    "backend_compilations",
}


@pytest.fixture
def session():
    s = CompilerSession()
    s.compile_source(SRC, BASE)
    s.compile_source(SRC, SMALL_DIM_SAFARA)
    s.compile_source(SRC, SMALL_DIM_SAFARA)  # cache hit
    return s


class TestStatsSchema:
    def test_top_level_keys(self, session):
        d = json.loads(json.dumps(session.stats_dict()))
        assert set(d) == STATS_KEYS
        assert set(d["execution"]) == EXECUTION_KEYS
        assert set(d["cache"]) == CACHE_KEYS

    def test_cache_counters_exposed(self, session):
        cache = session.stats_dict()["cache"]
        assert cache["misses"] == 2
        assert cache["hits"] == 1
        assert cache["evictions"] == 0
        assert isinstance(cache["hit_rate"], float)

    def test_trace_entries_carry_cache_keys_for_joining(self, session):
        d = session.stats_dict()
        keys = [t["cache_key"] for t in d["traces"]]
        assert all(isinstance(k, str) and len(k) == 64 for k in keys)
        # The join: each trace's key is exactly the CompileJob's cache key.
        expected = {
            CompileJob(source=SRC, config=cfg).key()
            for cfg in (BASE, SMALL_DIM_SAFARA)
        }
        assert set(keys) == expected
        assert session.cache.peek(keys[0])

    def test_trace_and_pass_shapes(self, session):
        trace = session.stats_dict()["traces"][0]
        assert set(trace) == TRACE_KEYS
        region = trace["regions"][0]
        assert set(region) == {"kernel", "wall_ms", "passes"}
        for p in region["passes"]:
            assert set(p) == PASS_KEYS
            assert isinstance(p["ran"], bool)
            assert isinstance(p["wall_ms"], float)

    def test_metrics_dict_types(self, session):
        d = json.loads(json.dumps(session.metrics.as_dict()))
        assert d, "metrics registry must not be empty after a compile"
        for name, entry in d.items():
            assert entry["type"] in ("counter", "gauge", "histogram"), name
            if entry["type"] == "histogram":
                assert {"count", "sum", "mean", "buckets"} <= set(entry)
                assert "le_inf" in entry["buckets"]
            else:
                assert isinstance(entry["value"], (int, float))

    def test_cli_stats_flag_round_trips(self, tmp_path, capsys):
        path = tmp_path / "demo.acc"
        path.write_text(SRC)
        assert main(["compile", str(path), "--stats"]) == 0
        out = capsys.readouterr().out
        d = json.loads(out[out.index("{"):])
        assert set(d) == STATS_KEYS


class TestChromeTraceSchema:
    def _trace(self):
        tracer = Tracer()
        with tracer.activate():
            CompilerSession().compile_source(SRC, SMALL_DIM_SAFARA)
        return chrome_trace(tracer)

    def test_document_shape(self):
        doc = json.loads(json.dumps(self._trace()))
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["producer"] == "repro.obs"
        assert doc["otherData"]["dropped"] == 0

    def test_event_fields_are_perfetto_valid(self):
        events = self._trace()["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        completes = [e for e in events if e["ph"] == "X"]
        assert metas and completes
        assert {m["name"] for m in metas} == {"process_name", "thread_name"}
        for e in completes:
            assert set(e) == {"name", "cat", "ph", "ts", "dur", "pid", "tid", "args"}
            assert e["pid"] == 1
            assert isinstance(e["tid"], int)
            assert e["ts"] >= 0 and e["dur"] >= 0

    def test_expected_span_names_present(self):
        names = {e["name"] for e in self._trace()["traceEvents"]
                 if e["ph"] == "X"}
        assert {
            "parse", "lex", "compile", "compile.function", "cache.lookup",
            "pipeline", "pass:safara", "safara.iteration", "ptxas", "codegen",
        } <= names

    def test_one_ptxas_span_per_feedback_iteration(self):
        events = [e for e in self._trace()["traceEvents"] if e["ph"] == "X"]
        ptxas = [e for e in events if e["name"] == "ptxas"]
        safara_pass = next(e for e in events if e["name"] == "pass:safara")
        assert len(ptxas) == safara_pass["args"]["backend_compilations"]
        assert [e["args"]["iteration"] for e in ptxas] == list(range(len(ptxas)))

    def test_nesting_is_monotonically_consistent(self):
        # On each thread, any two complete events either nest fully or are
        # disjoint — partial overlap would render as garbage in Perfetto.
        events = [e for e in self._trace()["traceEvents"] if e["ph"] == "X"]
        by_tid = {}
        for e in events:
            by_tid.setdefault(e["tid"], []).append(e)
        for tid_events in by_tid.values():
            for a in tid_events:
                for b in tid_events:
                    if a is b:
                        continue
                    a0, a1 = a["ts"], a["ts"] + a["dur"]
                    b0, b1 = b["ts"], b["ts"] + b["dur"]
                    overlap = max(a0, b0) < min(a1, b1)
                    nested = (a0 <= b0 and b1 <= a1) or (b0 <= a0 and a1 <= b1)
                    assert not overlap or nested, (a["name"], b["name"])

    def test_parents_precede_children(self):
        events = [e for e in self._trace()["traceEvents"] if e["ph"] == "X"]
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)
        pipeline = next(e for e in events if e["name"] == "pipeline")
        safara = next(e for e in events if e["name"] == "pass:safara")
        assert pipeline["ts"] <= safara["ts"]
        assert safara["ts"] + safara["dur"] <= pipeline["ts"] + pipeline["dur"] + 1e-6
