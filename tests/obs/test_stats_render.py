"""``repro stats`` rendering audit: every registered metric family since
PR 3 must appear in the rendered text — registering a dotted name can
never silently hide it from the stats surface (unknown families land in
the catch-all section instead of vanishing)."""

from repro.obs.metrics import METRIC_FAMILIES, MetricsRegistry


def exercised_registry() -> MetricsRegistry:
    """A registry holding one representative of every metric family the
    toolchain has grown through PR 7 (plus the PR 8 additions)."""
    m = MetricsRegistry()
    # session / cache / pipeline — the PR 2 families.
    m.counter("session.compilations").inc()
    m.counter("cache.hits").inc(3)
    m.counter("cache.disk.codegen_corrupt").inc()
    m.counter("cache.fnobj.hits").inc(2)
    m.counter("cache.fnobj.misses").inc()
    m.histogram("pipeline.pass.safara.wall_ms").observe(1.5)
    # codegen — the PR 7 generated-NumPy tier.
    m.counter("codegen.functions_built").inc()
    # ir / esat — the PR 10 intern-table counters and equality saturation.
    m.counter("ir.intern.hits").inc(5)
    m.counter("ir.intern.misses").inc(2)
    m.counter("esat.unions").inc(3)
    m.counter("esat.new_candidates").inc()
    # tune — the PR 5 autotuner.
    m.counter("tune.trials").inc(7)
    m.histogram("tune.trial_ms").observe(12.0)
    # serve — PR 3/6 broker, placement, degradations; PR 8 latency.
    m.counter("serve.requests.run").inc(4)
    m.counter("serve.placement.decisions").inc(2)
    m.counter("serve.placement.chosen.kepler-k20xm").inc(2)
    m.counter("serve.codegen.tier.codegen").inc(4)
    m.gauge("serve.queue_depth").set(1)
    m.log_histogram("serve.latency_ms.run").observe(3.25)
    # loadgen — PR 8.
    m.counter("loadgen.sent").inc(10)
    # A family nobody declared: must land in the catch-all, not vanish.
    m.counter("mystery.subsystem.events").inc()
    return m


class TestRenderCoverage:
    def test_every_registered_name_is_rendered(self):
        m = exercised_registry()
        text = m.render_text()
        for name in m.names():
            assert name in text, f"metric {name} missing from render_text()"

    def test_known_families_get_titled_sections(self):
        m = exercised_registry()
        text = m.render_text()
        titles = dict(METRIC_FAMILIES)
        for family in ("session", "cache", "ir", "pipeline", "esat",
                       "codegen", "tune", "serve", "loadgen"):
            assert f"# {titles[family]}" in text, family

    def test_unknown_family_lands_in_catch_all(self):
        m = exercised_registry()
        text = m.render_text()
        assert "# other (unclassified families)" in text
        catch_all = text.split("# other (unclassified families)")[1]
        assert "mystery.subsystem.events" in catch_all

    def test_families_render_in_declared_order(self):
        m = exercised_registry()
        text = m.render_text()
        positions = [
            text.index(f"# {title}")
            for family, title in METRIC_FAMILIES
            if f"# {title}" in text
        ]
        assert positions == sorted(positions)

    def test_log_histogram_renders_quantiles(self):
        m = exercised_registry()
        text = m.render_text()
        line = next(
            ln for ln in text.splitlines() if ln.startswith("serve.latency_ms.run")
        )
        assert "loghist" in line
        for key in ("p50=", "p99=", "p999="):
            assert key in line

    def test_every_metric_kind_renders_one_of_each(self):
        m = MetricsRegistry()
        m.counter("session.compilations").inc()
        m.gauge("serve.queue_depth").set(2)
        m.histogram("pipeline.wall_ms").observe(0.5)
        m.log_histogram("serve.latency_ms.run").observe(0.5)
        text = m.render_text()
        assert "counter" in text
        assert "gauge" in text
        assert "histogram" in text
        assert "loghist" in text


class TestBrokerSurfaceIsRendered:
    def test_live_broker_metrics_all_render(self):
        """End-to-end: every metric a served request registers shows up
        in the text rendering (the registry the `stats` op exports)."""
        from repro.serve.broker import Broker, BrokerConfig

        src = """
kernel axpy(const double x[1:n], double y[1:n], int n) {
  #pragma acc kernels loop gang vector(64)
  for (i = 1; i < n; i++) {
    y[i] = x[i] + y[i];
  }
}
"""
        with Broker(BrokerConfig(workers=1)) as broker:
            assert broker.handle(
                {"id": 1, "op": "run", "source": src, "env": {"n": 32}}
            )["ok"]
            assert broker.handle(
                {"id": 2, "op": "compile", "source": src}
            )["ok"]
            text = broker.metrics.render_text()
            for name in broker.metrics.names():
                assert name in text, f"{name} missing from rendered stats"
