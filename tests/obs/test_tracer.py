"""Tests for the span tracer (`repro.obs.tracer`)."""

import threading

import pytest

from repro.obs.tracer import (
    NULL_SPAN,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    span,
    traced,
)


class TestNullPath:
    def test_module_span_is_null_when_disabled(self):
        assert span("anything") is NULL_SPAN

    def test_null_span_is_a_working_context_manager(self):
        with span("anything", key="value") as sp:
            sp.set(more="attrs")  # must not raise

    def test_disabled_tracer_hands_out_null(self):
        t = Tracer()
        assert t.span("x") is NULL_SPAN
        assert t.spans == []


class TestRecording:
    def test_span_records_name_cat_args_and_timing(self):
        t = Tracer(enabled=True)
        with t.span("work", cat="test", kernel="k1") as sp:
            sp.set(registers=32)
        (recorded,) = t.spans
        assert recorded is sp
        assert recorded.name == "work"
        assert recorded.cat == "test"
        assert recorded.args == {"kernel": "k1", "registers": 32}
        assert recorded.dur_us >= 0.0

    def test_nesting_by_containment(self):
        t = Tracer(enabled=True)
        with t.span("outer"):
            with t.span("inner"):
                pass
        inner, outer = t.spans  # inner closes (records) first
        assert [s.name for s in (inner, outer)] == ["inner", "outer"]
        assert outer.ts_us <= inner.ts_us
        assert inner.ts_us + inner.dur_us <= outer.ts_us + outer.dur_us

    def test_exception_is_recorded_and_propagates(self):
        t = Tracer(enabled=True)
        with pytest.raises(ValueError):
            with t.span("doomed"):
                raise ValueError("boom")
        (recorded,) = t.spans
        assert recorded.args["error"] == "ValueError"

    def test_max_spans_drops_and_counts(self):
        t = Tracer(enabled=True, max_spans=2)
        for i in range(5):
            with t.span(f"s{i}"):
                pass
        assert len(t.spans) == 2
        assert t.dropped == 3

    def test_clear(self):
        t = Tracer(enabled=True, max_spans=1)
        for _ in range(3):
            with t.span("s"):
                pass
        t.clear()
        assert t.spans == [] and t.dropped == 0

    def test_threads_get_stable_small_tids(self):
        t = Tracer(enabled=True)
        with t.span("main-span"):
            pass

        def work():
            with t.span("worker-span"):
                pass

        th = threading.Thread(target=work)
        th.start()
        th.join()
        tids = {s.name: s.tid for s in t.spans}
        assert tids["main-span"] == 0
        assert tids["worker-span"] == 1


class TestActivation:
    def test_activate_swaps_and_restores(self):
        before = get_tracer()
        t = Tracer()
        with t.activate():
            assert get_tracer() is t
            assert t.enabled
            with span("scoped"):
                pass
        assert get_tracer() is before
        assert [s.name for s in t.spans] == ["scoped"]

    def test_set_tracer_none_restores_default(self):
        t = Tracer(enabled=True)
        set_tracer(t)
        try:
            assert get_tracer() is t
        finally:
            set_tracer(None)
        assert get_tracer() is not t

    def test_traced_decorator(self):
        @traced()
        def add(a, b):
            return a + b

        t = Tracer()
        with t.activate():
            assert add(2, 3) == 5
        (recorded,) = t.spans
        assert recorded.name.endswith("add")
        # Disabled again: calls bypass span creation entirely.
        assert add(1, 1) == 2
        assert len(t.spans) == 1

    def test_span_reports_instrumented_pipeline(self):
        # End-to-end: a compile through the session emits the span tree the
        # docs promise (parse > pipeline > passes, cache lookup, codegen).
        from repro.compiler.options import SMALL_DIM_SAFARA
        from repro.compiler.session import CompilerSession

        src = """
        kernel k(double a[n], const double b[n], int n) {
          #pragma acc kernels loop gang vector(64)
          for (i = 0; i < n; i++) { a[i] = 2.0 * b[i] + i; }
        }
        """
        t = Tracer()
        with t.activate():
            CompilerSession().compile_source(src, SMALL_DIM_SAFARA)
        names = set(t.span_names())
        assert {
            "lex",
            "parse",
            "compile",
            "compile.function",
            "cache.lookup",
            "pipeline",
            "pass:licm",
            "pass:safara",
            "safara.iteration",
            "ptxas",
            "codegen",
        } <= names
