"""Content-addressed compile-cache semantics: key stability, hit/miss
discrimination on every key component, LRU eviction, counters."""

from dataclasses import replace

import pytest

from repro.compiler import BASE, SMALL_DIM_SAFARA, CompilerSession
from repro.gpu.arch import FERMI_LIKE, KEPLER_K20XM
from repro.pipeline import CompileCache, cache_key

SRC = """
kernel axpy(const double x[1:n], double y[1:n], int n) {
  #pragma acc kernels loop gang vector(64)
  for (i = 1; i < n; i++) {
    y[i] = x[i] + y[i];
  }
}
"""


class TestCacheKey:
    def test_identical_inputs_identical_keys(self):
        assert cache_key(SRC, BASE) == cache_key(SRC, BASE)

    def test_value_equal_configs_share_a_key(self):
        clone = replace(BASE)
        assert clone is not BASE
        assert cache_key(SRC, clone) == cache_key(SRC, BASE)

    def test_changed_source_changes_key(self):
        assert cache_key(SRC, BASE) != cache_key(SRC + "\n", BASE)

    def test_changed_config_changes_key(self):
        assert cache_key(SRC, BASE) != cache_key(SRC, SMALL_DIM_SAFARA)
        assert cache_key(SRC, BASE) != cache_key(
            SRC, BASE.derive(register_limit=32)
        )

    def test_changed_arch_changes_key(self):
        assert cache_key(SRC, BASE.with_arch(KEPLER_K20XM)) != cache_key(
            SRC, BASE.with_arch(FERMI_LIKE)
        )

    def test_changed_env_changes_key(self):
        assert cache_key(SRC, BASE, env={"n": 512}) != cache_key(
            SRC, BASE, env={"n": 1024}
        )
        assert cache_key(SRC, BASE, env={"n": 512}) != cache_key(SRC, BASE)

    def test_env_order_does_not_matter(self):
        assert cache_key(SRC, BASE, env={"a": 1, "b": 2}) == cache_key(
            SRC, BASE, env={"b": 2, "a": 1}
        )

    def test_kernel_name_in_key(self):
        assert cache_key(SRC, BASE, kernel_name="axpy") != cache_key(SRC, BASE)


class TestCompileCache:
    def test_miss_then_hit(self):
        cache = CompileCache(maxsize=4)
        assert cache.get("k") is None
        cache.put("k", "v")
        assert cache.get("k") == "v"
        assert (cache.hits, cache.misses) == (1, 1)

    def test_lru_eviction_counts(self):
        cache = CompileCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a → b is now LRU
        cache.put("c", 3)
        assert cache.evictions == 1
        assert cache.get("b") is None  # evicted
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_reset_zeroes_counters(self):
        cache = CompileCache(maxsize=2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("zzz")
        cache.reset()
        assert (cache.hits, cache.misses, cache.evictions, len(cache)) == (0, 0, 0, 0)

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValueError):
            CompileCache(maxsize=0)

    def test_as_dict_and_summary(self):
        cache = CompileCache(maxsize=8)
        cache.put("a", 1)
        cache.get("a")
        d = cache.as_dict()
        assert d["hits"] == 1 and d["entries"] == 1 and d["maxsize"] == 8
        assert "1 hits" in cache.summary()


class TestSessionCaching:
    def test_identical_compile_hits(self):
        session = CompilerSession()
        p1 = session.compile_source(SRC, SMALL_DIM_SAFARA)
        p2 = session.compile_source(SRC, SMALL_DIM_SAFARA)
        assert p1 is p2
        assert session.cache.hits == 1 and session.cache.misses == 1
        assert session.stats.compilations == 1  # compiled once

    def test_config_change_misses(self):
        session = CompilerSession()
        session.compile_source(SRC, BASE)
        session.compile_source(SRC, SMALL_DIM_SAFARA)
        assert session.cache.misses == 2 and session.cache.hits == 0

    def test_arch_change_misses(self):
        session = CompilerSession()
        session.compile_source(SRC, BASE)
        session.compile_source(SRC, BASE.with_arch(FERMI_LIKE))
        assert session.cache.misses == 2 and session.cache.hits == 0

    def test_env_change_misses(self):
        session = CompilerSession()
        session.compile_source(SRC, BASE, env={"n": 512})
        session.compile_source(SRC, BASE, env={"n": 1024})
        session.compile_source(SRC, BASE, env={"n": 512})
        assert session.cache.misses == 2 and session.cache.hits == 1

    def test_cached_hit_is_bit_identical_to_fresh_compile(self):
        warm = CompilerSession()
        warm.compile_source(SRC, SMALL_DIM_SAFARA)
        hit = warm.compile_source(SRC, SMALL_DIM_SAFARA)
        fresh = CompilerSession().compile_source(SRC, SMALL_DIM_SAFARA)
        assert [k.vir.dump() for k in hit.kernels] == [
            k.vir.dump() for k in fresh.kernels
        ]
        assert [k.registers for k in hit.kernels] == [
            k.registers for k in fresh.kernels
        ]

    def test_session_reset(self):
        session = CompilerSession()
        session.compile_source(SRC, BASE)
        session.reset()
        assert len(session.cache) == 0
        assert session.stats.compilations == 0
        assert session.cache.misses == 0
