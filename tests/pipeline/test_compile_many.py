"""Batch compilation: parallel `compile_many` must be bit-identical to a
serial loop over the same jobs — for every benchmark under every
configuration — and must deduplicate within a batch."""

import pytest

from repro.bench.suites.registry import load_all
from repro.compiler import ALL_CONFIGS, BASE, CompileJob, CompilerSession
from repro.bench.runner import benchmark_job

SRC = """
kernel axpy(const double x[1:n], double y[1:n], int n) {
  #pragma acc kernels loop gang vector(64)
  for (i = 1; i < n; i++) {
    y[i] = x[i] + y[i];
  }
}
"""


def _fingerprint(program):
    """Everything observable about a compiled program, as comparable data."""
    return [
        (
            k.name,
            k.region_id is not None,
            k.registers,
            k.ptxas.summary(),
            k.vir.dump(),
            k.backend_compilations,
        )
        for k in program.kernels
    ]


def _all_jobs():
    spec, nas = load_all()
    return [
        benchmark_job(s, cfg)
        for s in spec.all() + nas.all()
        for cfg in ALL_CONFIGS.values()
    ]


class TestParallelSerialParity:
    def test_parallel_bit_identical_to_serial_all_benchmarks_all_configs(self):
        jobs = _all_jobs()
        assert len(jobs) == 16 * len(ALL_CONFIGS)

        serial_session = CompilerSession()
        serial = [
            serial_session.compile_source(
                j.source, j.config, kernel_name=j.kernel_name, env=j.env
            )
            for j in jobs
        ]
        parallel_session = CompilerSession(max_workers=8)
        parallel = parallel_session.compile_many(jobs)

        assert len(parallel) == len(serial)
        for s, p in zip(serial, parallel):
            assert _fingerprint(s) == _fingerprint(p)
        # every job is unique → the parallel batch compiled each exactly once
        assert parallel_session.cache.misses == len(jobs)
        assert parallel_session.stats.compilations == len(jobs)


class TestBatchSemantics:
    def test_results_align_with_jobs(self):
        spec, _ = load_all()
        specs = spec.all()[:3]
        session = CompilerSession()
        jobs = [benchmark_job(s, BASE) for s in specs]
        programs = session.compile_many(jobs)
        for s, p in zip(specs, programs):
            assert p.function.name in s.source

    def test_duplicate_jobs_compile_once(self):
        session = CompilerSession()
        job = CompileJob(source=SRC, config=BASE)
        programs = session.compile_many([job] * 5)
        assert all(p is programs[0] for p in programs)
        assert session.stats.compilations == 1
        assert session.cache.misses == 1

    def test_warm_batch_is_all_hits(self):
        session = CompilerSession()
        jobs = [
            CompileJob(source=SRC, config=cfg) for cfg in ALL_CONFIGS.values()
        ]
        cold = session.compile_many(jobs)
        hits_before = session.cache.hits
        warm = session.compile_many(jobs)
        assert session.cache.hits == hits_before + len(jobs)
        for c, w in zip(cold, warm):
            assert c is w

    def test_tuple_jobs_accepted(self):
        session = CompilerSession()
        (program,) = session.compile_many([(SRC, BASE)])
        assert program.kernels

    def test_empty_batch(self):
        assert CompilerSession().compile_many([]) == []

    def test_serial_worker_path(self):
        session = CompilerSession()
        jobs = [CompileJob(source=SRC, config=BASE)]
        (program,) = session.compile_many(jobs, max_workers=1)
        assert program.kernels

    def test_unknown_parallel_mode_is_config_error(self):
        from repro.errors import ConfigError

        session = CompilerSession()
        with pytest.raises(ConfigError, match="valid modes are thread, process"):
            session.compile_many([(SRC, BASE)], parallel="bogus")

    def test_process_mode_bit_identical_to_serial(self):
        spec, _ = load_all()
        jobs = [benchmark_job(s, BASE) for s in spec.all()[:3]]
        serial = CompilerSession().compile_many(jobs, max_workers=1)
        session = CompilerSession()
        programs = session.compile_many(jobs, max_workers=2, parallel="process")
        for s, p in zip(serial, programs):
            assert _fingerprint(s) == _fingerprint(p)
        # worker traces are recorded in the parent session
        assert session.stats.compilations == len(jobs)

    def test_thread_mode_overlaps_backend_latency(self):
        """With injected backend latency, 4 workers over 8 distinct jobs
        must beat the serial wall-clock — the scaling the hotpath
        regression row gates at 1.5x."""
        import time as _time

        from repro.feedback import latency_scope

        jobs = [
            CompileJob(source=SRC.replace("axpy", f"axpy{i}"), config=BASE)
            for i in range(8)
        ]
        with latency_scope(0.02):
            t0 = _time.perf_counter()
            CompilerSession().compile_many(jobs, max_workers=1)
            serial_s = _time.perf_counter() - t0
            t0 = _time.perf_counter()
            CompilerSession().compile_many(jobs, max_workers=4)
            parallel_s = _time.perf_counter() - t0
        assert parallel_s < serial_s * 0.7, (serial_s, parallel_s)

    def test_module_level_compile_many_uses_default_session(self):
        import repro

        before = repro.default_session().cache.misses
        repro.compile_many([CompileJob(source=SRC.replace("axpy", "axpy_dflt"), config=BASE)])
        assert repro.default_session().cache.misses == before + 1
