"""Cross-arch cache isolation: per-arch compile variants share the
two-tier store without collisions.

The content-addressed key hashes the config repr, which embeds the full
:class:`~repro.gpu.arch.GpuArch` — so the same source compiled for two
fleet members occupies two distinct entries in both the in-memory and
persistent tiers, and a warm restart replays *both* variants with zero
backend compilations.
"""

from repro.compiler import CompilerSession
from repro.compiler.options import BASE, SMALL_DIM_SAFARA
from repro.pipeline import cache_key

SRC = """
kernel axpy(const double x[1:n], double y[1:n], int n) {
  #pragma acc kernels loop gang vector(64)
  for (i = 1; i < n; i++) {
    y[i] = x[i] + y[i];
  }
}
"""

KEPLER_CFG = SMALL_DIM_SAFARA
CDNA2_CFG = SMALL_DIM_SAFARA.derive(arch="cdna2-mi250")

BACKEND_METRIC = "pipeline.pass.safara.backend_compilations"


def backend_compilations(session) -> int:
    metric = session.metrics.get(BACKEND_METRIC)
    return int(metric.value) if metric else 0


class TestKeyIsolation:
    def test_arch_changes_the_cache_key(self):
        assert cache_key(SRC, KEPLER_CFG) != cache_key(SRC, CDNA2_CFG)

    def test_name_and_instance_spellings_share_a_key(self):
        from repro.gpu.arch import CDNA2_MI250

        assert cache_key(SRC, CDNA2_CFG) == cache_key(
            SRC, SMALL_DIM_SAFARA.derive(arch=CDNA2_MI250)
        )

    def test_all_fleet_profiles_have_distinct_keys(self):
        from repro.gpu.arch import list_archs

        keys = {cache_key(SRC, BASE.derive(arch=name)) for name in list_archs()}
        assert len(keys) == len(list_archs())


class TestMemoryTier:
    def test_no_cross_arch_hits(self):
        session = CompilerSession()
        session.compile_source(SRC, KEPLER_CFG)
        session.compile_source(SRC, CDNA2_CFG)
        assert session.cache.hits == 0
        assert session.cache.misses == 2

    def test_each_variant_replays_from_its_own_entry(self):
        session = CompilerSession()
        kepler = session.compile_source(SRC, KEPLER_CFG)
        cdna2 = session.compile_source(SRC, CDNA2_CFG)
        assert session.compile_source(SRC, KEPLER_CFG) is kepler
        assert session.compile_source(SRC, CDNA2_CFG) is cdna2
        assert session.cache.hits == 2


class TestDiskTierWarmRestart:
    def test_warm_restart_replays_both_variants_with_zero_backend(
        self, tmp_path
    ):
        cold = CompilerSession(cache_dir=tmp_path)
        cold.compile_source(SRC, KEPLER_CFG)
        cold.compile_source(SRC, CDNA2_CFG)
        assert backend_compilations(cold) > 0  # SAFARA feedback ran

        # A fresh session over the same directory models a daemon restart.
        warm = CompilerSession(cache_dir=tmp_path)
        a = warm.compile_source(SRC, KEPLER_CFG)
        b = warm.compile_source(SRC, CDNA2_CFG)
        assert backend_compilations(warm) == 0
        assert warm.disk_cache.hits == 2
        assert a.config.arch.name != b.config.arch.name

    def test_disk_entries_do_not_collide(self, tmp_path):
        cold = CompilerSession(cache_dir=tmp_path)
        cold.compile_source(SRC, KEPLER_CFG)
        cold.compile_source(SRC, CDNA2_CFG)
        assert len(cold.disk_cache) == 2
