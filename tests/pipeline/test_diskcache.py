"""Persistent disk-cache semantics: layout, atomicity, eviction,
corruption tolerance, and the two-tier wiring through CompilerSession."""

import os
import pickle

import pytest

from repro.compiler import BASE, SMALL_DIM_SAFARA, CompilerSession
from repro.pipeline import DiskCache, cache_key
from repro.pipeline.diskcache import FORMAT_VERSION

SRC = """
kernel axpy(const double x[1:n], double y[1:n], int n) {
  #pragma acc kernels loop gang vector(64)
  for (i = 1; i < n; i++) {
    y[i] = x[i] + y[i];
  }
}
"""

KEY = cache_key(SRC, BASE)


class TestLayout:
    def test_entries_shard_by_key_prefix(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put(KEY, {"v": 1})
        expected = tmp_path / "shards" / KEY[:2] / f"{KEY}.pkl"
        assert expected.is_file()
        assert len(cache) == 1

    def test_roundtrip(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put(KEY, {"answer": 42})
        assert cache.get(KEY) == {"answer": 42}
        assert cache.hits == 1 and cache.misses == 0

    def test_missing_key_is_a_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        assert cache.get(KEY) is None
        assert cache.misses == 1

    def test_rejects_non_hash_keys(self, tmp_path):
        cache = DiskCache(tmp_path)
        with pytest.raises(ValueError, match="content-hash"):
            cache.put("../../escape", 1)

    def test_no_tmp_files_left_behind(self, tmp_path):
        cache = DiskCache(tmp_path)
        for i in range(5):
            cache.put(KEY, {"v": i})
        leftovers = [
            p for p in (tmp_path / "shards").rglob("*") if ".tmp-" in p.name
        ]
        assert leftovers == []

    def test_persists_across_instances(self, tmp_path):
        DiskCache(tmp_path).put(KEY, "payload")
        assert DiskCache(tmp_path).get(KEY) == "payload"

    def test_peek_does_not_count(self, tmp_path):
        cache = DiskCache(tmp_path)
        assert not cache.peek(KEY)
        cache.put(KEY, 1)
        assert cache.peek(KEY)
        assert cache.hits == 0 and cache.misses == 0


class TestCorruptionTolerance:
    def _entry_path(self, tmp_path):
        return tmp_path / "shards" / KEY[:2] / f"{KEY}.pkl"

    def test_truncated_entry_is_a_miss_and_deleted(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put(KEY, {"v": 1})
        path = self._entry_path(tmp_path)
        path.write_bytes(path.read_bytes()[:10])
        assert cache.get(KEY) is None
        assert cache.corrupt == 1
        assert not path.exists()

    def test_garbage_entry_is_a_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        path = self._entry_path(tmp_path)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a pickle at all")
        assert cache.get(KEY) is None
        assert cache.corrupt == 1

    def test_wrong_key_envelope_is_a_miss(self, tmp_path):
        """A copy of another entry under this key must not be served."""
        cache = DiskCache(tmp_path)
        other = cache_key(SRC + "\n", BASE)
        path = self._entry_path(tmp_path)
        path.parent.mkdir(parents=True)
        path.write_bytes(
            pickle.dumps({"format": FORMAT_VERSION, "key": other, "value": 1})
        )
        assert cache.get(KEY) is None
        assert cache.corrupt == 1

    def test_format_version_mismatch_is_a_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        path = self._entry_path(tmp_path)
        path.parent.mkdir(parents=True)
        path.write_bytes(
            pickle.dumps({"format": FORMAT_VERSION + 1, "key": KEY, "value": 1})
        )
        assert cache.get(KEY) is None
        assert cache.corrupt == 1

    def test_rewrite_after_corruption_serves_again(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put(KEY, "good")
        path = self._entry_path(tmp_path)
        path.write_bytes(b"junk")
        assert cache.get(KEY) is None
        cache.put(KEY, "good again")
        assert cache.get(KEY) == "good again"


class TestEviction:
    def _keys(self, n):
        return [cache_key(SRC + "\n" * i, BASE) for i in range(n)]

    def test_size_bound_evicts_oldest(self, tmp_path):
        keys = self._keys(6)
        cache = DiskCache(tmp_path, max_bytes=1)  # every put overflows
        for key in keys:
            cache.put(key, "x" * 64)
        # Only the newest entry survives a 1-byte budget.
        assert len(cache) <= 1
        assert cache.evictions >= 5

    def test_recency_refresh_spares_hot_entries(self, tmp_path):
        keys = self._keys(3)
        cache = DiskCache(tmp_path, max_bytes=10**9)
        for key in keys:
            cache.put(key, "payload")
        # Make the first entry the most recently used despite oldest write.
        first = tmp_path / "shards" / keys[0][:2] / f"{keys[0]}.pkl"
        old = first.stat().st_mtime - 1000
        for key in keys[1:]:
            p = tmp_path / "shards" / key[:2] / f"{key}.pkl"
            os.utime(p, (old, old))
        assert cache.get(keys[0]) == "payload"
        entry_bytes = cache.total_bytes() // 3
        cache.max_bytes = entry_bytes * 2 + entry_bytes // 2  # room for ~2
        cache.put(cache_key(SRC + "tail", BASE), "payload")
        assert cache.peek(keys[0])  # hot entry survived


class TestSessionWiring:
    def test_warm_restart_serves_from_disk_without_backend(self, tmp_path):
        """The acceptance property: a fresh process (modelled by a fresh
        session over the same directory) serves a previously-compiled
        program without a single ptxas feedback iteration."""
        cold = CompilerSession(cache_dir=tmp_path)
        p_cold = cold.compile_source(SRC, SMALL_DIM_SAFARA)
        assert cold.stats.compilations == 1
        cold_ptxas = cold.metrics.get("pipeline.pass.safara.backend_compilations")
        assert cold_ptxas is not None and cold_ptxas.value > 0

        warm = CompilerSession(cache_dir=tmp_path)
        p_warm = warm.compile_source(SRC, SMALL_DIM_SAFARA)
        assert warm.stats.compilations == 0
        assert warm.metrics.get("pipeline.pass.safara.backend_compilations") is None
        assert warm.disk_cache.hits == 1
        # Served bit-identical compilation artifacts.
        assert p_warm.kernels[0].ptxas.registers == p_cold.kernels[0].ptxas.registers
        assert p_warm.kernels[0].vir.dump() == p_cold.kernels[0].vir.dump()

    def test_disk_hit_promotes_to_memory(self, tmp_path):
        CompilerSession(cache_dir=tmp_path).compile_source(SRC, BASE)
        warm = CompilerSession(cache_dir=tmp_path)
        warm.compile_source(SRC, BASE)
        warm.compile_source(SRC, BASE)
        assert warm.disk_cache.hits == 1  # second lookup hit memory
        assert warm.cache.hits == 1

    def test_compile_many_uses_disk_tier(self, tmp_path):
        CompilerSession(cache_dir=tmp_path).compile_many(
            [(SRC, BASE), (SRC, SMALL_DIM_SAFARA)]
        )
        warm = CompilerSession(cache_dir=tmp_path)
        programs = warm.compile_many([(SRC, BASE), (SRC, SMALL_DIM_SAFARA)])
        assert len(programs) == 2
        assert warm.stats.compilations == 0
        assert warm.disk_cache.hits == 2

    def test_corrupted_entry_triggers_recompile(self, tmp_path):
        cold = CompilerSession(cache_dir=tmp_path)
        cold.compile_source(SRC, BASE)
        for p in (tmp_path / "shards").rglob("*.pkl"):
            p.write_bytes(b"corrupted beyond repair")
        warm = CompilerSession(cache_dir=tmp_path)
        program = warm.compile_source(SRC, BASE)
        assert warm.stats.compilations == 1  # recompiled, no crash
        assert warm.disk_cache.corrupt == 1
        assert program.kernels[0].ptxas.registers > 0
        # ... and the rewrite makes the next restart warm again.
        again = CompilerSession(cache_dir=tmp_path)
        again.compile_source(SRC, BASE)
        assert again.stats.compilations == 0

    def test_stats_dict_reports_disk_tier(self, tmp_path):
        session = CompilerSession(cache_dir=tmp_path)
        session.compile_source(SRC, BASE)
        d = session.stats_dict()
        assert d["cache"]["disk"]["writes"] == 1

    def test_no_disk_cache_by_default(self):
        assert CompilerSession().disk_cache is None


class TestEnvelopeV2:
    """Format-v2 envelopes: codegen source rides along; v1 still loads."""

    def _entry_path(self, tmp_path):
        return tmp_path / "shards" / KEY[:2] / f"{KEY}.pkl"

    def test_put_and_get_entry_roundtrip_codegen(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put(KEY, {"v": 1}, codegen="# generated")
        value, codegen = cache.get_entry(KEY)
        assert value == {"v": 1}
        assert codegen == "# generated"

    def test_get_ignores_codegen(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put(KEY, "payload", codegen="# generated")
        assert cache.get(KEY) == "payload"

    def test_v1_envelope_loads_without_codegen(self, tmp_path):
        """Backward compatibility: entries written before the version bump
        read fine — they just carry no generated source."""
        cache = DiskCache(tmp_path)
        path = self._entry_path(tmp_path)
        path.parent.mkdir(parents=True)
        path.write_bytes(
            pickle.dumps({"format": 1, "key": KEY, "value": "old payload"})
        )
        value, codegen = cache.get_entry(KEY)
        assert value == "old payload"
        assert codegen is None
        assert cache.corrupt == 0 and cache.hits == 1

    def test_v1_entry_upgrades_on_next_write(self, tmp_path):
        cache = DiskCache(tmp_path)
        path = self._entry_path(tmp_path)
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps({"format": 1, "key": KEY, "value": 1}))
        cache.put(KEY, 1, codegen="# src")
        envelope = pickle.loads(path.read_bytes())
        assert envelope["format"] == FORMAT_VERSION
        assert envelope["codegen"] == "# src"

    def test_codegen_only_entry_is_not_a_program_hit(self, tmp_path):
        """Run-path envelopes store source with no program; ``get`` callers
        must not mistake them for compiled programs."""
        cache = DiskCache(tmp_path)
        cache.put(KEY, None, codegen="# src only")
        assert cache.get(KEY) is None
        assert cache.get_entry(KEY) == (None, "# src only")

    def test_non_text_codegen_field_drops_source_keeps_value(self, tmp_path):
        cache = DiskCache(tmp_path)
        path = self._entry_path(tmp_path)
        path.parent.mkdir(parents=True)
        path.write_bytes(
            pickle.dumps(
                {"format": FORMAT_VERSION, "key": KEY, "value": 7,
                 "codegen": [b"not", "text"]}
            )
        )
        value, codegen = cache.get_entry(KEY)
        assert value == 7 and codegen is None
        counter = cache.metrics.get("cache.disk.codegen_corrupt")
        assert counter is not None and counter.value == 1

    def test_session_envelope_carries_codegen_source(self, tmp_path):
        session = CompilerSession(cache_dir=tmp_path)
        session.compile_source(SRC, BASE)
        key = cache_key(SRC, BASE)
        _, codegen = session.disk_cache.get_entry(key)
        assert codegen is not None
        assert codegen.startswith("# repro:numpy_source v1")
