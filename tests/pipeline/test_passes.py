"""Pass/PassManager: registration, ordering, gating, instrumentation —
and the CLI's ``--stats`` JSON emission."""

import json

import pytest

from repro.cli import main
from repro.compiler import (
    BASE,
    CARR_KENNEDY,
    SAFARA_ONLY,
    SMALL_DIM_SAFARA,
    UNROLL_SAFARA,
    CompilerSession,
)
from repro.pipeline import (
    Pass,
    PassManager,
    default_passes,
    ir_size,
)

SRC = """
kernel chain(const double x[1:nz][1:ny][1:nx], double y[1:nz][1:ny][1:nx],
             int nx, int ny, int nz) {
  #pragma acc kernels loop gang vector(2) \\
      dim((1:nz, 1:ny, 1:nx)(x, y)) small(x, y)
  for (j = 1; j < ny; j++) {
    #pragma acc loop gang vector(64)
    for (i = 1; i < nx; i++) {
      #pragma acc loop seq
      for (k = 2; k < nz; k++) {
        y[k][j][i] = x[k][j][i] + x[k-1][j][i];
      }
    }
  }
}
"""


class TestPassManager:
    def test_default_order(self):
        assert PassManager().pass_names() == [
            "autopar", "licm", "unroll", "esat", "carr-kennedy", "safara",
        ]

    def test_register_appends_by_default(self):
        pm = PassManager()

        class Extra(Pass):
            name = "extra"

            def run(self, ctx):
                return None

        pm.register(Extra())
        assert pm.pass_names()[-1] == "extra"

    def test_register_before_and_after(self):
        pm = PassManager()

        class A(Pass):
            name = "a"

            def run(self, ctx):
                return None

        class B(Pass):
            name = "b"

            def run(self, ctx):
                return None

        pm.register(A(), before="licm")
        pm.register(B(), after="licm")
        names = pm.pass_names()
        assert names.index("a") == names.index("licm") - 1
        assert names.index("b") == names.index("licm") + 1

    def test_register_unknown_anchor_raises(self):
        with pytest.raises(KeyError):
            PassManager().register(Pass(), before="nope")

    def test_register_rejects_both_anchors(self):
        with pytest.raises(ValueError):
            PassManager().register(Pass(), before="licm", after="licm")


class TestInstrumentation:
    def _passes(self, config):
        session = CompilerSession()
        session.compile_source(SRC, config)
        trace = session.stats.traces[0]
        return {p.name: p for p in trace.regions[0].passes}

    def test_disabled_passes_are_recorded_as_skipped(self):
        by_name = self._passes(BASE)
        assert not by_name["safara"].ran
        assert not by_name["carr-kennedy"].ran
        assert not by_name["unroll"].ran
        assert by_name["licm"].ran and by_name["autopar"].ran

    def test_safara_register_delta_from_feedback_history(self):
        by_name = self._passes(SAFARA_ONLY)
        safara = by_name["safara"]
        assert safara.ran
        assert safara.registers_before is not None
        assert safara.registers_after is not None
        assert safara.backend_compilations >= 1
        # SAFARA introduces rotating temporaries → register use climbs
        assert safara.register_delta >= 0

    def test_ir_size_delta_positive_for_replacement(self):
        by_name = self._passes(CARR_KENNEDY)
        ck = by_name["carr-kennedy"]
        assert ck.ran
        assert ck.ir_before > 0
        # scalar replacement inserts temp decls/moves
        assert ck.ir_after >= ck.ir_before

    def test_unroll_runs_under_unroll_config(self):
        by_name = self._passes(UNROLL_SAFARA)
        assert by_name["unroll"].ran
        assert by_name["unroll"].ir_after > by_name["unroll"].ir_before

    def test_wall_time_recorded(self):
        by_name = self._passes(SMALL_DIM_SAFARA)
        assert all(p.wall_ms >= 0 for p in by_name.values())
        assert sum(p.wall_ms for p in by_name.values()) > 0

    def test_ir_size_counts_statements(self):
        from repro.ir import build_module
        from repro.lang import parse_program

        fn = build_module(parse_program(SRC)).functions[0]
        assert ir_size(fn.regions()[0]) > 0


class TestCustomPasses:
    def test_custom_pass_report_reaches_trace_and_reports(self):
        calls = []

        class Counter(Pass):
            name = "counter"
            report_key = None

            def run(self, ctx):
                calls.append(ctx.kernel_name)
                return None

        session = CompilerSession(passes=default_passes())
        session.pipeline.register(Counter(), after="licm")
        session.compile_source(SRC, BASE)
        assert calls == ["chain_k1"]
        trace = session.stats.traces[0].regions[0]
        assert "counter" in [p.name for p in trace.passes]

    def test_session_with_reduced_pipeline(self):
        # a session restricted to the baseline passes still compiles
        session = CompilerSession(passes=default_passes()[:2])
        program = session.compile_source(SRC, SMALL_DIM_SAFARA)
        assert program.kernels[0].safara is None  # safara pass absent


class TestCliStats:
    @pytest.fixture
    def demo_file(self, tmp_path):
        path = tmp_path / "demo.acc"
        path.write_text(SRC)
        return str(path)

    def test_stats_flag_emits_json_trace(self, demo_file, capsys):
        assert main(["compile", demo_file, "--stats"]) == 0
        out = capsys.readouterr().out
        payload = out[out.index("{"):]
        stats = json.loads(payload)
        assert stats["compilations"] == 2  # two default configs
        assert stats["cache"]["misses"] == 2
        names = [p["pass"] for p in stats["traces"][0]["regions"][0]["passes"]]
        assert names == ["autopar", "licm", "unroll", "esat", "carr-kennedy", "safara"]
        for p in stats["traces"][0]["regions"][0]["passes"]:
            assert {"wall_ms", "ir_delta", "register_delta"} <= set(p)

    def test_experiments_prints_cache_totals(self, capsys):
        assert main(["experiments", "table1"]) == 0
        out = capsys.readouterr().out
        assert "compile cache:" in out
        assert "hits" in out and "misses" in out
