"""The pluggable pass registry: normalization, aliases, loud failure on
unknown names, third-party registration, the facade exports, and the
``repro passes`` CLI subcommand."""

import json

import pytest

from repro.cli import main
from repro.errors import ConfigError
from repro.pipeline import (
    DEFAULT_PASS_ORDER,
    PASSES,
    Pass,
    PassRegistry,
    default_passes,
    get_pass,
    list_passes,
    register_pass,
)
from repro.pipeline.passes import EsatPass, SafaraPass


class TestLookup:
    def test_canonical_names_resolve(self):
        assert PASSES.get("esat") is EsatPass
        assert PASSES.get("safara") is SafaraPass

    def test_lookup_normalizes_case_spaces_underscores(self):
        assert PASSES.get("Carr Kennedy") is PASSES.get("carr-kennedy")
        assert PASSES.get("carr_kennedy") is PASSES.get("carr-kennedy")
        assert PASSES.get("  ESAT  ") is EsatPass

    def test_aliases_resolve_to_the_same_class(self):
        assert PASSES.get("equality-saturation") is EsatPass
        assert PASSES.get("saturate") is EsatPass
        assert PASSES.get("ck") is PASSES.get("carr-kennedy")
        assert PASSES.get("scalar-replacement") is SafaraPass
        assert PASSES.get("auto_parallelize") is PASSES.get("autopar")

    def test_class_passes_through(self):
        assert PASSES.get(EsatPass) is EsatPass

    def test_unknown_name_lists_registered_passes(self):
        with pytest.raises(ConfigError, match="unknown optimization pass"):
            PASSES.get("fuse-everything")
        with pytest.raises(ConfigError, match="esat"):
            PASSES.get("fuse-everything")

    def test_contains_covers_names_and_aliases(self):
        assert "esat" in PASSES
        assert "saturate" in PASSES
        assert "SATURATE" in PASSES
        assert "fuse-everything" not in PASSES

    def test_key_of_maps_class_back_to_canonical_key(self):
        assert PASSES.key_of(EsatPass) == "esat"

        class Unregistered(Pass):
            name = "nope"

            def run(self, ctx):
                return None

        assert PASSES.key_of(Unregistered) is None


class TestRegistration:
    def test_register_in_a_fresh_registry(self):
        reg = PassRegistry()

        class FusePass(Pass):
            name = "fuse"

            def run(self, ctx):
                return None

        reg.register("fuse", FusePass, aliases=("loop-fuse",))
        assert reg.get("fuse") is FusePass
        assert reg.get("loop-fuse") is FusePass
        assert reg.get("fuse") is FusePass  # the class's own name too
        assert reg.names() == ["fuse"]
        # The process-wide registry is untouched.
        assert "fuse" not in PASSES

    def test_register_rejects_non_pass_classes(self):
        reg = PassRegistry()
        with pytest.raises(ConfigError, match="Pass subclass"):
            reg.register("bad", object)  # type: ignore[arg-type]
        with pytest.raises(ConfigError, match="Pass subclass"):
            reg.register("bad", EsatPass())  # instance, not class

    def test_facade_exports(self):
        import repro

        assert repro.get_pass is get_pass
        assert repro.list_passes is list_passes
        assert repro.register_pass is register_pass
        assert get_pass("esat") is EsatPass
        assert "esat" in list_passes()


class TestDefaultPipeline:
    def test_default_passes_come_from_the_registry(self):
        names = [p.name for p in default_passes()]
        assert names == ["autopar", "licm", "unroll", "esat",
                         "carr-kennedy", "safara"]
        assert list(DEFAULT_PASS_ORDER) == [
            "autopar", "licm", "unroll", "esat", "carr-kennedy", "safara",
        ]

    def test_every_default_pass_is_registered(self):
        for key in DEFAULT_PASS_ORDER:
            assert key in PASSES

    def test_default_passes_are_fresh_instances(self):
        a, b = default_passes(), default_passes()
        assert all(x is not y for x, y in zip(a, b))

    def test_esat_runs_before_scalar_replacement(self):
        names = [p.name for p in default_passes()]
        assert names.index("esat") < names.index("safara")


class TestPassesCli:
    def test_text_output_lists_default_pipeline_in_order(self, capsys):
        assert main(["passes"]) == 0
        out = capsys.readouterr().out
        assert "default pipeline (in order):" in out
        lines = [ln.split()[0] for ln in out.splitlines() if ln.startswith("  ")]
        assert lines[: len(DEFAULT_PASS_ORDER)] == list(DEFAULT_PASS_ORDER)

    def test_json_output_names_classes_and_positions(self, capsys):
        assert main(["passes", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        by_key = {r["pass"]: r for r in rows}
        assert by_key["esat"]["class"] == "EsatPass"
        assert by_key["esat"]["default_position"] == 3
        for row in rows:
            assert set(row) == {"pass", "class", "default_position", "summary"}
            assert row["summary"]
