"""CompilerSession behavior and backward-compatibility of the shims.

The old public entrypoints (``compile_source``, ``compile_function``,
``compile_guarded``, ``time_program``, ``optimize_region``) must keep
working unchanged — including the README's minimal API example, executed
here verbatim from the README text."""

import inspect
import pathlib
import re

import pytest

import repro
from repro.compiler import (
    BASE,
    SMALL_DIM_SAFARA,
    CompiledProgram,
    CompilerConfig,
    CompilerSession,
    ProgramTiming,
    compile_function,
    compile_guarded,
    compile_source,
    default_session,
    time_program,
)
from repro.feedback import optimize_region
from repro.ir import build_module
from repro.lang import parse_program

README = pathlib.Path(__file__).resolve().parents[2] / "README.md"

SRC = """
kernel chain(const double x[1:nz][1:ny][1:nx], double y[1:nz][1:ny][1:nx],
             int nx, int ny, int nz) {
  #pragma acc kernels loop gang vector(2) \\
      dim((1:nz, 1:ny, 1:nx)(x, y)) small(x, y)
  for (j = 1; j < ny; j++) {
    #pragma acc loop gang vector(64)
    for (i = 1; i < nx; i++) {
      #pragma acc loop seq
      for (k = 2; k < nz; k++) {
        y[k][j][i] = x[k][j][i] + x[k-1][j][i];
      }
    }
  }
}
"""


class TestReadmeExample:
    def test_minimal_api_example_runs_unmodified(self, capsys):
        text = README.read_text()
        m = re.search(r"Minimal API example.*?```python\n(.*?)```", text, re.S)
        assert m, "README minimal API example not found"
        exec(compile(m.group(1), str(README), "exec"), {})
        out = capsys.readouterr().out
        assert "OpenUH(base)" in out and "ms" in out


class TestShimCompatibility:
    def test_compile_source_returns_compiled_program(self):
        program = compile_source(SRC, BASE)
        assert isinstance(program, CompiledProgram)
        assert program.config is BASE
        assert program.kernels and program.kernels[0].name == "chain_k1"

    def test_compile_source_config_stays_positional(self):
        # the README example passes config positionally; that must not break
        assert compile_source(SRC, SMALL_DIM_SAFARA).config is SMALL_DIM_SAFARA

    def test_optional_params_are_keyword_only(self):
        for fn, kwonly in [
            (compile_source, {"kernel_name", "filename"}),
            (time_program, {"launches"}),
            (compile_guarded, {"options", "arch", "name"}),
        ]:
            sig = inspect.signature(fn)
            actual = {
                n
                for n, p in sig.parameters.items()
                if p.kind is inspect.Parameter.KEYWORD_ONLY
            }
            assert kwonly <= actual, fn.__name__

    def test_compile_function_matches_compile_source(self):
        fn = build_module(parse_program(SRC)).functions[0]
        via_fn = compile_function(fn, SMALL_DIM_SAFARA)
        via_src = compile_source(SRC, SMALL_DIM_SAFARA)
        assert [k.registers for k in via_fn.kernels] == [
            k.registers for k in via_src.kernels
        ]

    def test_time_program_shim(self):
        program = compile_source(SRC, BASE)
        timing = time_program(program, {"nx": 64, "ny": 32, "nz": 16}, launches=3)
        assert isinstance(timing, ProgramTiming)
        assert timing.total_ms > 0

    def test_compile_guarded_shim(self):
        fn = build_module(parse_program(SRC)).functions[0]
        guarded = compile_guarded(fn.regions()[0], fn.symtab, name="g")
        kernel, info, verdict = guarded.select({"nx": 64, "ny": 32, "nz": 16})
        assert verdict.ok
        assert kernel is guarded.optimized

    def test_optimize_region_shim(self):
        fn = build_module(parse_program(SRC)).functions[0]
        before = default_session().stats.feedback_optimizations
        report, feedback = optimize_region(fn.regions()[0], fn.symtab)
        assert feedback.compilations >= 1
        assert feedback.history
        assert default_session().stats.feedback_optimizations == before + 1

    def test_shims_share_the_default_session_cache(self):
        session = default_session()
        src = SRC.replace("chain", "chain_shared")
        baseline = session.cache.misses
        compile_source(src, BASE)
        compile_source(src, BASE)
        assert session.cache.misses == baseline + 1

    def test_repro_reexports_session_api(self):
        assert repro.CompilerSession is CompilerSession
        assert isinstance(repro.default_session(), CompilerSession)


class TestConfigDerive:
    def test_derive_overrides_fields(self):
        capped = SMALL_DIM_SAFARA.derive(name="cap32", register_limit=32)
        assert capped.name == "cap32" and capped.register_limit == 32
        assert capped.safara and capped.honor_small and capped.honor_dim

    def test_derive_leaves_original_untouched(self):
        SMALL_DIM_SAFARA.derive(register_limit=32)
        assert SMALL_DIM_SAFARA.register_limit is None

    def test_config_is_frozen(self):
        with pytest.raises(AttributeError):
            BASE.register_limit = 32  # type: ignore[misc]

    def test_derive_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="no_such_field"):
            BASE.derive(no_such_field=1)

    def test_derive_unknown_field_error_is_config_error(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="no_such_field"):
            BASE.derive(no_such_field=1)

    def test_with_arch_is_derive(self):
        from repro.gpu.arch import FERMI_LIKE

        assert BASE.with_arch(FERMI_LIKE).arch is FERMI_LIKE


class TestSessionStats:
    def test_stats_dict_shape(self):
        session = CompilerSession()
        session.compile_source(SRC, SMALL_DIM_SAFARA)
        session.time_program(
            session.compile_source(SRC, SMALL_DIM_SAFARA),
            {"nx": 64, "ny": 32, "nz": 16},
        )
        d = session.stats_dict()
        assert d["compilations"] == 1
        assert d["timings"] == 1
        assert d["cache"]["hits"] == 1 and d["cache"]["misses"] == 1
        assert set(d["pass_totals"]) == {
            "autopar", "licm", "unroll", "esat", "carr-kennedy", "safara",
        }
        trace = d["traces"][0]
        assert trace["config"] == SMALL_DIM_SAFARA.name
        passes = trace["regions"][0]["passes"]
        by_name = {p["pass"]: p for p in passes}
        assert by_name["safara"]["ran"] is True
        assert by_name["safara"]["backend_compilations"] >= 1
        assert by_name["unroll"]["ran"] is False

    def test_sessions_are_isolated(self):
        a, b = CompilerSession(), CompilerSession()
        a.compile_source(SRC, BASE)
        assert b.stats.compilations == 0 and len(b.cache) == 0
