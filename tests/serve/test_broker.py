"""Broker semantics: admission, deadlines, retries with backoff, fault
injection, degradation, and warm restarts through the shared disk cache."""

import threading
import time

import pytest

from repro.compiler.options import SMALL_DIM_SAFARA
from repro.feedback.driver import (
    FeedbackTimeout,
    PermanentFeedbackError,
    TransientFeedbackError,
    classify_failure,
    fault_scope,
)
from repro.serve.broker import Broker, BrokerConfig

SRC = """
kernel axpy(const double x[1:n], double y[1:n], int n) {
  #pragma acc kernels loop gang vector(64)
  for (i = 1; i < n; i++) {
    y[i] = x[i] + y[i];
  }
}
"""

BAD_SRC = "kernel oops( {"


def make_broker(**overrides) -> Broker:
    defaults = dict(workers=2, backoff_base_ms=1.0, backoff_cap_ms=5.0)
    defaults.update(overrides)
    return Broker(BrokerConfig(**defaults))


def compile_request(request_id=1, source=SRC, **fields) -> dict:
    return {"id": request_id, "op": "compile", "source": source, **fields}


class TestClassification:
    def test_taxonomy(self):
        assert classify_failure(TransientFeedbackError("busy")) == "transient"
        assert classify_failure(FeedbackTimeout("late")) == "transient"
        assert classify_failure(TimeoutError()) == "transient"
        assert classify_failure(PermanentFeedbackError("bad")) == "permanent"
        assert classify_failure(ValueError("bug")) == "permanent"


class TestCompile:
    def test_compile_round_trip(self):
        with make_broker() as broker:
            response = broker.handle(compile_request())
            assert response["ok"]
            result = response["result"]
            assert result["config"] == SMALL_DIM_SAFARA.name
            assert result["kernels"][0]["registers"] > 0
            assert result["cached"] is None

    def test_concurrent_requests_all_answered(self):
        with make_broker(workers=4) as broker:
            requests = [
                compile_request(i, SRC + "\n" * i) for i in range(12)
            ]
            futures = [broker.submit(r) for r in requests]
            responses = [f.result(timeout=60) for f in futures]
        assert all(r["ok"] for r in responses)
        assert sorted(r["id"] for r in responses) == list(range(12))

    def test_timing_attached_when_env_given(self):
        with make_broker() as broker:
            response = broker.handle(compile_request(env={"n": 4096}))
        assert response["result"]["timing"]["total_ms"] > 0

    def test_parse_error_is_permanent(self):
        with make_broker() as broker:
            response = broker.handle(compile_request(source=BAD_SRC))
        assert not response["ok"]
        assert response["error"]["code"] == "parse_error"
        assert response["error"]["retryable"] is False

    def test_unknown_config_rejected(self):
        with make_broker() as broker:
            response = broker.handle(compile_request(config="nope"))
        assert response["error"]["code"] == "unknown_config"

    def test_malformed_request_rejected(self):
        with make_broker() as broker:
            assert broker.handle({"op": "compile"})["error"]["code"] == "bad_request"
            assert broker.handle({"op": "dance"})["error"]["code"] == "bad_request"
            assert broker.handle([1, 2])["error"]["code"] == "bad_request"


class TestAdmission:
    def test_queue_full_rejects_with_429_semantics(self):
        release = threading.Event()
        started = threading.Event()
        with make_broker(workers=1, queue_limit=0) as broker:
            broker._sleep = lambda s: None

            def stall(kernel, iteration):
                started.set()
                release.wait(timeout=30)

            with fault_scope(stall):
                first = broker.submit(compile_request(1))
                assert started.wait(timeout=30)
                # Worker busy, no queue slots: immediate rejection.
                second = broker.handle(compile_request(2))
                release.set()
                assert first.result(timeout=30)["ok"]
        assert not second["ok"]
        assert second["error"]["code"] == "queue_full"
        assert second["error"]["retryable"] is True
        assert broker.metrics.get("serve.rejected").value == 1

    def test_draining_broker_rejects(self):
        broker = make_broker()
        broker.drain()
        response = broker.handle(compile_request())
        assert response["error"]["code"] == "shutting_down"


class TestFaultInjection:
    def test_transient_failures_are_retried_with_backoff(self):
        failures = {"left": 2}
        sleeps: list[float] = []
        with make_broker(workers=1, max_retries=3) as broker:
            broker._sleep = sleeps.append

            def flaky(kernel, iteration):
                if failures["left"] > 0:
                    failures["left"] -= 1
                    raise TransientFeedbackError("assembler busy")

            with fault_scope(flaky):
                response = broker.handle(compile_request())
        assert response["ok"]
        assert response["result"]["attempts"] == 3
        assert broker.metrics.get("serve.retries").value == 2
        # Exponential: second wait strictly longer than the first even
        # with jitter (base*2 > base*(1+jitter) for jitter < 1).
        assert len(sleeps) == 2 and sleeps[1] > sleeps[0]

    def test_transient_failures_exhaust_retries(self):
        with make_broker(workers=1, max_retries=2) as broker:
            broker._sleep = lambda s: None

            def always_down(kernel, iteration):
                raise TransientFeedbackError("assembler down")

            with fault_scope(always_down):
                response = broker.handle(compile_request())
        assert not response["ok"]
        assert response["error"]["code"] == "transient_failure"
        assert response["error"]["retryable"] is True
        assert broker.metrics.get("serve.retries").value == 2

    def test_permanent_failures_fail_fast(self):
        calls = {"n": 0}
        with make_broker(workers=1, max_retries=5) as broker:
            broker._sleep = lambda s: None

            def broken(kernel, iteration):
                calls["n"] += 1
                raise PermanentFeedbackError("bad input")

            with fault_scope(broken):
                response = broker.handle(compile_request())
        assert not response["ok"]
        assert response["error"]["code"] == "compile_error"
        assert response["error"]["retryable"] is False
        assert calls["n"] == 1  # no retries
        assert broker.metrics.get("serve.retries").value == 0

    def test_injected_timeout_with_budget_left_is_retried(self):
        failures = {"left": 1}
        with make_broker(workers=1) as broker:
            broker._sleep = lambda s: None

            def times_out_once(kernel, iteration):
                if failures["left"] > 0:
                    failures["left"] -= 1
                    raise FeedbackTimeout("simulated hang")

            with fault_scope(times_out_once):
                response = broker.handle(compile_request(deadline_ms=60_000))
        assert response["ok"]
        assert response["result"]["attempts"] == 2

    def test_deadline_exhaustion_yields_deadline_exceeded(self):
        with make_broker(workers=1) as broker:
            def burn_budget(kernel, iteration):
                time.sleep(0.05)
                raise FeedbackTimeout("hung past the fence")

            with fault_scope(burn_budget):
                response = broker.handle(compile_request(deadline_ms=20))
        assert not response["ok"]
        assert response["error"]["code"] == "deadline_exceeded"
        assert response["error"]["retryable"] is True
        assert broker.metrics.get("serve.deadline_exceeded").value == 1

    def test_real_deadline_interrupts_feedback_loop(self):
        """No injected exception: the driver's own deadline check fires
        before the *second* region's backend run (the slow assembler is
        simulated by a hook that sleeps, never raises)."""
        two_regions = """
kernel pair(const double x[1:n], double y[1:n], double z[1:n], int n) {
  #pragma acc kernels loop gang vector(64)
  for (i = 1; i < n; i++) {
    y[i] = x[i] + y[i];
  }
  #pragma acc kernels loop gang vector(64)
  for (i = 1; i < n; i++) {
    z[i] = x[i] * y[i];
  }
}
"""
        with make_broker(workers=1, max_retries=0) as broker:
            def slow_assembler(kernel, iteration):
                time.sleep(0.03)

            with fault_scope(slow_assembler):
                response = broker.handle(
                    compile_request(source=two_regions, deadline_ms=25)
                )
        assert not response["ok"]
        assert response["error"]["code"] == "deadline_exceeded"


class TestWarmRestart:
    def test_restart_serves_from_disk_without_feedback(self, tmp_path):
        """Kill-and-restart property at the broker level: the second
        broker (fresh process stand-in) answers from the persistent tier
        with zero ptxas feedback iterations."""
        with make_broker(cache_dir=str(tmp_path)) as cold:
            r1 = cold.handle(compile_request())
        assert r1["ok"] and r1["result"]["cached"] is None
        ptxas_cold = cold.metrics.get("pipeline.pass.safara.backend_compilations")
        assert ptxas_cold is not None and ptxas_cold.value > 0

        with make_broker(cache_dir=str(tmp_path)) as warm:
            r2 = warm.handle(compile_request())
        assert r2["ok"] and r2["result"]["cached"] == "disk"
        # The ptxas-iteration counter never registered: no feedback ran.
        assert warm.metrics.get("pipeline.pass.safara.backend_compilations") is None
        assert warm.metrics.get("session.compilations").value == 0
        assert warm.disk_cache.hits == 1
        assert r2["result"]["kernels"] == r1["result"]["kernels"]

    def test_corrupted_disk_entry_recompiles_cleanly(self, tmp_path):
        with make_broker(cache_dir=str(tmp_path)) as cold:
            assert cold.handle(compile_request())["ok"]
        for p in (tmp_path / "shards").rglob("*.pkl"):
            p.write_bytes(b"\x00garbage")
        with make_broker(cache_dir=str(tmp_path)) as warm:
            response = warm.handle(compile_request())
        assert response["ok"]
        assert warm.disk_cache.corrupt == 1
        assert warm.metrics.get("session.compilations").value == 1


class TestRun:
    def run_request(self, request_id=1, **fields):
        return {
            "id": request_id,
            "op": "run",
            "source": SRC,
            "env": {"n": 256},
            **fields,
        }

    def test_run_round_trip(self):
        with make_broker() as broker:
            response = broker.handle(self.run_request())
        assert response["ok"]
        result = response["result"]
        assert result["executor"]["used"] == "codegen"
        assert result["stats"]["iterations"] == 255

    def test_missing_env_is_bad_request(self):
        with make_broker() as broker:
            response = broker.handle(self.run_request(env={}))
        assert response["error"]["code"] == "bad_request"
        assert "n" in response["error"]["message"]

    def test_deadline_pressure_degrades_to_scalar(self):
        with make_broker(degrade_threshold_ms=10_000.0) as broker:
            response = broker.handle(self.run_request(deadline_ms=5_000))
        assert response["ok"]
        result = response["result"]
        assert result["executor"]["used"] == "scalar"
        assert result["executor"]["degraded"] == "deadline_pressure"
        assert broker.metrics.get("serve.degradations").value == 1
        assert (
            broker.metrics.get("serve.degradations.deadline").value == 1
        )

    def test_explicit_scalar_is_not_a_degradation(self):
        with make_broker() as broker:
            response = broker.handle(self.run_request(executor="scalar"))
        assert response["ok"]
        assert response["result"]["executor"]["used"] == "scalar"
        assert broker.metrics.get("serve.degradations").value == 0


class TestCodegenServing:
    """The generated-NumPy tier as seen from the serving surface: per-tier
    metrics, executor validation, and warm-restart rebinding of persisted
    generated source."""

    def run_request(self, request_id=1, **fields):
        return {
            "id": request_id,
            "op": "run",
            "source": SRC,
            "env": {"n": 256},
            **fields,
        }

    @pytest.fixture(autouse=True)
    def fresh_function_cache(self, monkeypatch):
        from repro.codegen import numpy_source

        monkeypatch.setattr(numpy_source, "_CACHE", numpy_source.FunctionCache())

    def test_tier_counters_and_codegen_latency(self):
        with make_broker() as broker:
            assert broker.handle(self.run_request(1))["ok"]
            assert broker.handle(self.run_request(2))["ok"]
        assert broker.metrics.get("serve.codegen.tier.codegen").value == 2
        assert broker.metrics.get("serve.codegen.codegen_ms").count == 2
        # The second request reuses the first one's bound function object.
        assert broker.metrics.get("cache.fnobj.hits").value == 1

    def test_scalar_requests_count_under_their_tier(self):
        with make_broker() as broker:
            broker.handle(self.run_request(executor="scalar"))
        assert broker.metrics.get("serve.codegen.tier.scalar").value == 1

    def test_unknown_executor_is_bad_request(self):
        with make_broker() as broker:
            response = broker.handle(self.run_request(executor="warp"))
        assert not response["ok"]
        assert response["error"]["code"] == "bad_request"
        assert "valid executors" in response["error"]["message"]

    def test_warm_restart_rebinds_persisted_source(self, tmp_path, monkeypatch):
        from repro.codegen import numpy_source

        with make_broker(cache_dir=str(tmp_path)) as cold:
            assert cold.handle(self.run_request())["result"]["executor"][
                "used"
            ] == "codegen"

        # "Restart": empty function cache, and generation must not re-run —
        # the persisted source from the disk envelope is rebound instead.
        monkeypatch.setattr(numpy_source, "_CACHE", numpy_source.FunctionCache())

        def no_generate(*a, **k):
            raise AssertionError("warm restart must bind, not regenerate")

        monkeypatch.setattr(numpy_source, "compile_kernel", no_generate)
        with make_broker(cache_dir=str(tmp_path)) as warm:
            response = warm.handle(self.run_request())
        assert response["ok"]
        assert response["result"]["executor"]["used"] == "codegen"
        assert warm.metrics.get("serve.codegen.tier.codegen").value == 1


class TestStats:
    def test_stats_snapshot(self, tmp_path):
        with make_broker(cache_dir=str(tmp_path)) as broker:
            broker.handle(compile_request())
            response = broker.handle({"id": 9, "op": "stats"})
        assert response["ok"]
        result = response["result"]
        assert result["broker"]["workers"] == 2
        assert result["metrics"]["serve.requests.compile"]["value"] == 1
        assert result["disk_cache"]["writes"] == 1
