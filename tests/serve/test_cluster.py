"""The sharded serving tier: routing determinism and cache
co-location, hot-key replication, hedged retries, per-tenant quotas,
failover, drain/restart with zero warm-cache loss, and the rollup
surfaces (stats / telemetry / trace fan-out).

Everything here drives :class:`LocalShard` routers — in-process, no
subprocesses — so the suite stays deterministic and fast; the
``ProcessShard`` path is covered by the CLI smoke in CI and the
regression ledger's ``cluster`` row.
"""

import threading
import time
from concurrent.futures import Future

import pytest

from repro.errors import BadRequestError, raise_for_response
from repro.serve import hashring, protocol
from repro.serve.broker import Broker, BrokerConfig
from repro.serve.cluster import (
    ClusterConfig,
    LocalShard,
    Router,
    routing_key,
)

AXPY = """
kernel axpy(const double x[1:n], double y[1:n], int n) {
  #pragma acc kernels loop gang vector(64)
  for (i = 1; i < n; i++) {
    y[i] = x[i] + y[i];
  }
}
"""

SCALE = """
kernel scale(double y[1:n], int n) {
  #pragma acc kernels loop gang vector(64)
  for (i = 1; i < n; i++) {
    y[i] = 2.0 * y[i];
  }
}
"""


def source_variant(i: int) -> str:
    """A family of distinct-but-valid kernels (distinct routing keys)."""
    return AXPY.replace("x[i] + y[i]", f"x[i] + y[i] + {float(i)}")


def expected_shard(request: dict, n: int = 2) -> int:
    owner = hashring.route(routing_key(request), [f"shard-{i}" for i in range(n)])
    return int(owner.rsplit("-", 1)[1])


def quiet_config(**overrides) -> ClusterConfig:
    """Two local shards, hot-key machinery effectively disabled so
    placement is pure rendezvous hashing."""
    defaults = dict(
        shards=2,
        broker=BrokerConfig(workers=1),
        hot_key_min_hits=10_000,
        hedge_after_ms=60_000.0,  # never hedge unless a test opts in
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


class TestRoutingKey:
    def test_op_and_env_do_not_split_a_kernel(self):
        """compile / run / tune of one kernel must co-locate (that is
        the point of content-addressed routing: shared warm tiers)."""
        compile_req = {"op": "compile", "source": AXPY}
        run_req = {"op": "run", "source": AXPY, "env": {"n": 64}}
        tune_req = {"op": "tune", "source": AXPY, "env": {"n": 1024}}
        assert (
            routing_key(compile_req)
            == routing_key(run_req)
            == routing_key(tune_req)
        )

    def test_source_config_and_arch_do_split(self):
        base = {"op": "compile", "source": AXPY}
        assert routing_key(base) != routing_key({**base, "source": SCALE})
        assert routing_key(base) != routing_key({**base, "config": "acc_opt"})
        assert routing_key(base) != routing_key({**base, "arch": "kepler-k20x"})


class TestRouting:
    def test_keyed_response_is_annotated_and_deterministic(self):
        with Router(quiet_config()) as router:
            for i in range(4):
                request = {"id": i, "op": "compile", "source": source_variant(i)}
                response = router.handle(request)
                assert response["ok"], response
                assert response["shard"] == expected_shard(request)

    def test_one_kernel_pins_to_one_shard_across_ops(self):
        with Router(quiet_config()) as router:
            compile_resp = router.handle(
                {"id": 1, "op": "compile", "source": AXPY}
            )
            run_resp = router.handle(
                {"id": 2, "op": "run", "source": AXPY, "env": {"n": 64}}
            )
            assert compile_resp["ok"] and run_resp["ok"]
            assert compile_resp["shard"] == run_resp["shard"]

    def test_control_ops_are_not_annotated(self):
        with Router(quiet_config()) as router:
            response = router.handle({"id": 1, "op": "stats"})
            assert response["ok"]
            assert "shard" not in response

    def test_invalid_request_rejected_without_routing(self):
        with Router(quiet_config()) as router:
            response = router.handle({"id": 1, "op": "compile"})
            assert not response["ok"]
            assert response["error"]["code"] == protocol.BAD_REQUEST

    def test_second_request_hits_the_warm_shard_memory(self):
        with Router(quiet_config()) as router:
            first = router.handle({"id": 1, "op": "compile", "source": AXPY})
            second = router.handle({"id": 2, "op": "compile", "source": AXPY})
            assert first["result"]["cached"] is None  # cold
            assert second["result"]["cached"] == "memory"


class TestHotKeyReplication:
    def test_hot_key_rotates_over_distinct_shards(self):
        config = quiet_config(hot_key_min_hits=1, replication=2)
        with Router(config) as router:
            for i in range(6):
                response = router.handle(
                    {"id": i, "op": "compile", "source": AXPY}
                )
                assert response["ok"]
            routed = [
                router.metrics.get(f"cluster.routed.shard-{i}").value
                for i in range(2)
            ]
            # One key, six requests: without replication one shard gets
            # all six; rotation must spread them over both.
            assert all(n >= 2 for n in routed), routed
            assert router.telemetry_snapshot()["cluster"]["hot_keys"] == 1

    def test_replication_one_disables_rotation(self):
        config = quiet_config(hot_key_min_hits=1, replication=1)
        with Router(config) as router:
            for i in range(5):
                router.handle({"id": i, "op": "compile", "source": AXPY})
            request = {"op": "compile", "source": AXPY}
            pinned = expected_shard(request)
            assert (
                router.metrics.get(f"cluster.routed.shard-{pinned}").value == 5
            )


class TestQuotas:
    def test_quota_exhaustion_yields_retryable_quota_exceeded(self):
        config = quiet_config(tenant_rate=0.001, tenant_burst=2.0)
        with Router(config) as router:
            codes = []
            for i in range(4):
                response = router.handle(
                    {
                        "id": i,
                        "op": "compile",
                        "source": AXPY,
                        "tenant": "acme",
                    }
                )
                codes.append(
                    None if response["ok"] else response["error"]["code"]
                )
            assert codes == [
                None,
                None,
                protocol.QUOTA_EXCEEDED,
                protocol.QUOTA_EXCEEDED,
            ]

    def test_tenants_are_isolated(self):
        config = quiet_config(tenant_rate=0.001, tenant_burst=1.0)
        with Router(config) as router:
            assert router.handle(
                {"id": 1, "op": "compile", "source": AXPY, "tenant": "a"}
            )["ok"]
            assert router.handle(
                {"id": 2, "op": "compile", "source": AXPY, "tenant": "b"}
            )["ok"]
            blocked = router.handle(
                {"id": 3, "op": "compile", "source": AXPY, "tenant": "a"}
            )
            assert blocked["error"]["code"] == protocol.QUOTA_EXCEEDED
            assert blocked["error"]["retryable"] is True

    def test_control_plane_is_never_charged(self):
        config = quiet_config(tenant_rate=0.001, tenant_burst=1.0)
        with Router(config) as router:
            router.handle(
                {"id": 1, "op": "compile", "source": AXPY, "tenant": "a"}
            )
            for _ in range(3):
                assert router.handle({"op": "stats", "tenant": "a"})["ok"]

    def test_quota_balances_appear_in_stats(self):
        config = quiet_config(tenant_rate=1.0, tenant_burst=5.0)
        with Router(config) as router:
            router.handle(
                {"id": 1, "op": "compile", "source": AXPY, "tenant": "acme"}
            )
            stats = router.handle({"op": "stats"})["result"]
            assert "acme" in stats["router"]["quotas"]


class _LaggyShard:
    """Wraps a LocalShard, delaying every response by ``delay_s`` —
    the slow replica a hedge is supposed to beat."""

    def __init__(self, inner: LocalShard, delay_s: float):
        self._inner = inner
        self.delay_s = delay_s

    def __getattr__(self, name):
        return getattr(self._inner, name)

    # ``state`` must stay readable/writable through the wrapper.
    @property
    def state(self):
        return self._inner.state

    @state.setter
    def state(self, value):
        self._inner.state = value

    def try_submit(self, request: dict):
        inner_future = self._inner.try_submit(request)
        if inner_future is None:
            return None
        outer: Future = Future()

        def relay(done: Future) -> None:
            def fire() -> None:
                try:
                    outer.set_result(done.result())
                except Exception as exc:  # pragma: no cover - transport death
                    outer.set_exception(exc)

            threading.Timer(self.delay_s, fire).start()

        inner_future.add_done_callback(relay)
        return outer


class _DeadShard:
    """A shard whose transport is gone: ``try_submit`` always fails."""

    kind = "local"

    def __init__(self, index: int):
        self.index = index
        self.shard_id = f"shard-{index}"
        self.state = "up"
        self.config = BrokerConfig(workers=1)

    def try_submit(self, request: dict):
        return None

    def stop(self, timeout: float = 60.0) -> None:
        pass

    def telemetry(self, timeout: float = 5.0):
        return None

    def stats_snapshot(self, timeout: float = 5.0):
        return None

    def trace_snapshot(self, request: dict, timeout: float = 5.0):
        return None


class TestHedging:
    def test_hedge_beats_a_laggy_shard(self):
        request = {"id": 1, "op": "compile", "source": AXPY}
        slow = expected_shard(request)
        broker_config = BrokerConfig(workers=1)
        shards = [LocalShard(0, broker_config), LocalShard(1, broker_config)]
        shards[slow] = _LaggyShard(shards[slow], delay_s=1.5)
        config = quiet_config(hedge_after_ms=50.0)
        with Router(config, shards=shards) as router:
            t0 = time.monotonic()
            response = router.handle(request)
            elapsed = time.monotonic() - t0
            assert response["ok"], response
            # The hedge answered: the fast shard, well before the lag.
            assert response["shard"] != slow
            assert elapsed < 1.4
            assert router.metrics.get("cluster.hedges").value == 1
            assert router.metrics.get("cluster.hedge_wins").value == 1
            # The laggy loser eventually completes and is counted.
            deadline = time.monotonic() + 5.0
            while (
                router.metrics.get("cluster.hedge_wasted").value < 1
                and time.monotonic() < deadline
            ):
                time.sleep(0.02)
            assert router.metrics.get("cluster.hedge_wasted").value == 1

    def test_fast_primary_never_hedges(self):
        with Router(quiet_config(hedge_after_ms=5_000.0)) as router:
            for i in range(3):
                assert router.handle(
                    {"id": i, "op": "compile", "source": source_variant(i)}
                )["ok"]
            assert router.metrics.get("cluster.hedges").value == 0


class TestFailover:
    def test_dead_primary_fails_over_to_next_rank(self):
        request = {"id": 1, "op": "compile", "source": AXPY}
        dead = expected_shard(request)
        live = 1 - dead
        shards: list = [None, None]
        shards[dead] = _DeadShard(dead)
        shards[live] = LocalShard(live, BrokerConfig(workers=1))
        with Router(quiet_config(), shards=shards) as router:
            response = router.handle(request)
            assert response["ok"], response
            assert response["shard"] != dead
            assert router.metrics.get("cluster.failovers").value >= 1

    def test_all_shards_dead_answers_shard_unavailable(self):
        shards = [_DeadShard(0), _DeadShard(1)]
        with Router(quiet_config(), shards=shards) as router:
            response = router.handle(
                {"id": 1, "op": "compile", "source": AXPY}
            )
            assert not response["ok"]
            assert response["error"]["code"] == protocol.SHARD_UNAVAILABLE
            assert response["error"]["retryable"] is True

    def test_no_live_shard_answers_shard_unavailable(self):
        shards = [_DeadShard(0), _DeadShard(1)]
        shards[0].state = "down"
        shards[1].state = "down"
        with Router(quiet_config(), shards=shards) as router:
            response = router.handle(
                {"id": 1, "op": "compile", "source": AXPY}
            )
            assert response["error"]["code"] == protocol.SHARD_UNAVAILABLE


class TestDrainRestart:
    def test_drain_restart_keeps_the_disk_tier_warm(self, tmp_path):
        config = quiet_config(
            broker=BrokerConfig(workers=1, cache_dir=str(tmp_path / "cache"))
        )
        request = {"op": "compile", "source": AXPY}
        owner = expected_shard(request)
        with Router(config) as router:
            first = router.handle({"id": 1, **request})
            assert first["ok"] and first["result"]["cached"] is None
            result = router.drain_shard(owner, restart=True)
            assert result["state"] == "up"
            assert result["restarted"] is True
            second = router.handle({"id": 2, **request})
            assert second["ok"]
            assert second["shard"] == owner  # same placement after rejoin
            # The restarted broker's memory tier is empty; the shared
            # disk namespace is what carries the key across the cycle.
            assert second["result"]["cached"] == "disk"
            cluster = router.telemetry_snapshot()["cluster"]
            assert cluster["drains"] == 1 and cluster["restarts"] == 1

    def test_draining_shard_takes_no_new_routes(self, tmp_path):
        config = quiet_config(
            broker=BrokerConfig(workers=1, cache_dir=str(tmp_path / "cache"))
        )
        request = {"op": "compile", "source": AXPY}
        owner = expected_shard(request)
        with Router(config) as router:
            result = router.drain_shard(owner)  # no restart
            assert result["state"] == "down"
            response = router.handle({"id": 1, **request})
            assert response["ok"]
            assert response["shard"] != owner

    def test_cannot_drain_the_last_live_shard(self):
        with Router(quiet_config()) as router:
            router.drain_shard(0)
            with pytest.raises(BadRequestError, match="last live shard"):
                router.drain_shard(1)

    def test_last_shard_drain_with_restart_is_allowed(self, tmp_path):
        config = quiet_config(
            shards=1,
            broker=BrokerConfig(workers=1, cache_dir=str(tmp_path / "cache")),
        )
        with Router(config) as router:
            result = router.drain_shard(0, restart=True)
            assert result["state"] == "up"
            assert router.handle(
                {"id": 1, "op": "compile", "source": AXPY}
            )["ok"]

    def test_unknown_and_non_up_shards_are_rejected(self):
        with Router(quiet_config()) as router:
            with pytest.raises(BadRequestError, match="no shard 7"):
                router.drain_shard(7)
            router.drain_shard(0)
            with pytest.raises(BadRequestError, match="down, not up"):
                router.drain_shard(0)

    def test_drain_validation_is_in_the_protocol(self):
        with pytest.raises(protocol.ServeError, match="shard"):
            protocol.validate_request({"op": "drain"})
        with pytest.raises(protocol.ServeError):
            protocol.validate_request({"op": "drain", "shard": True})
        with pytest.raises(protocol.ServeError, match="restart"):
            protocol.validate_request(
                {"op": "drain", "shard": 0, "restart": "yes"}
            )

    def test_single_broker_daemon_rejects_the_drain_op(self):
        with Broker(BrokerConfig(workers=1)) as broker:
            response = broker.handle({"id": 1, "op": "drain", "shard": 0})
        assert not response["ok"]
        assert response["error"]["code"] == protocol.BAD_REQUEST
        assert "cluster" in response["error"]["message"]


class TestTracePropagation:
    def test_trace_id_travels_router_to_shard(self):
        with Router(quiet_config()) as router:
            response = router.handle(
                {
                    "id": 1,
                    "op": "compile",
                    "source": AXPY,
                    "trace_id": "trace-cluster-1",
                }
            )
            assert response["ok"]
            assert response["trace_id"] == "trace-cluster-1"
            found = router.handle(
                {"id": 2, "op": "trace", "trace_id": "trace-cluster-1"}
            )
            assert found["ok"]
            record = found["result"]
            assert record["found"] is True
            assert record["shard"] == response["shard"]

    def test_unknown_trace_id_reports_not_found(self):
        with Router(quiet_config()) as router:
            result = router.handle(
                {"id": 1, "op": "trace", "trace_id": "zzz-missing"}
            )["result"]
            assert result["found"] is False and result["record"] is None

    def test_listing_fans_out_per_shard(self):
        with Router(quiet_config()) as router:
            router.handle({"id": 1, "op": "compile", "source": AXPY})
            listing = router.handle({"id": 2, "op": "trace"})["result"]
            assert {row["shard"] for row in listing["shards"]} == {0, 1}


class TestRollups:
    def test_stats_document_shape(self):
        with Router(quiet_config()) as router:
            router.handle({"id": 1, "op": "compile", "source": AXPY})
            stats = router.handle({"op": "stats"})["result"]
            assert stats["router"]["shards"] == 2
            assert stats["router"]["up"] == 2
            assert stats["router"]["process_shards"] is False
            assert len(stats["shards"]) == 2
            for row in stats["shards"]:
                assert row["state"] == "up"
                assert "stats" in row

    def test_telemetry_frame_is_broker_shaped_plus_cluster(self):
        with Router(quiet_config()) as router:
            router.handle({"id": 1, "op": "compile", "source": AXPY})
            frame = router.telemetry_snapshot()
            # Every key the broker's frame carries (repro top contract).
            for key in (
                "ts", "uptime_s", "workers", "queue_limit", "queue_depth",
                "stopping", "requests", "requests_total", "rejected",
                "retries", "deadline_exceeded", "degradations", "cache",
                "placement", "codegen_tiers", "latency_ms", "flight_recorded",
            ):
                assert key in frame, key
            assert frame["requests"]["compile"] == 1
            assert frame["cluster"]["shards"] == 2
            rows = frame["shards"]
            assert [row["shard"] for row in rows] == [0, 1]
            assert sum(row["routed"] for row in rows) == 1

    def test_router_drives_the_load_generator_unchanged(self, tmp_path):
        """The router duck-types the broker surface, so ``run_load``
        (and therefore ``repro loadgen``) needs no cluster-specific
        code — and its report gains the per-shard balance stanza."""
        from repro.loadgen import LoadProfile, run_load

        config = quiet_config(
            broker=BrokerConfig(workers=2, cache_dir=str(tmp_path / "cache"))
        )
        profile = LoadProfile(
            rate_rps=20.0,
            duration_s=0.5,
            arrival="fixed",
            benchmarks=("303.ostencil", "355.seismic"),
            seed=0,
            tenant="acme",
        )
        with Router(config) as router:
            report = run_load(profile, broker=router)
        assert report["requests"]["errors"] == 0
        assert sum(report["per_shard"].values()) == 10
        balance = report["shard_balance"]
        assert balance is not None
        assert balance["shards_seen"] == 2

    def test_shutdown_op_marks_stopping(self):
        router = Router(quiet_config())
        try:
            response = router.handle({"id": 1, "op": "shutdown"})
            assert response["ok"] and response["result"]["stopping"] is True
        finally:
            router.drain()
        assert router.handle({"id": 2, "op": "stats"})["error"]["code"] == (
            protocol.SHUTTING_DOWN
        )


class TestAdmission:
    def test_queue_full_when_router_capacity_exhausted(self):
        config = quiet_config(router_workers=1, queue_limit=0)
        shards = [_SlowDeadlockFreeShard(0), _SlowDeadlockFreeShard(1)]
        with Router(config, shards=shards) as router:
            first = router.submit({"id": 1, "op": "compile", "source": AXPY})
            # Router capacity is 1: the next admission must bounce.
            deadline = time.monotonic() + 2.0
            while router.pending < 1 and time.monotonic() < deadline:
                time.sleep(0.005)
            second = router.handle(
                {"id": 2, "op": "compile", "source": AXPY}
            )
            assert second["error"]["code"] == protocol.QUEUE_FULL
            assert first.result(timeout=10)["ok"]

    def test_tenant_field_is_validated(self):
        with Router(quiet_config()) as router:
            response = router.handle(
                {"id": 1, "op": "compile", "source": AXPY, "tenant": 7}
            )
            assert response["error"]["code"] == protocol.BAD_REQUEST


class _SlowDeadlockFreeShard(_DeadShard):
    """Answers every request after a short sleep (without consuming a
    broker worker), so admission tests can hold the router pool busy."""

    def try_submit(self, request: dict):
        future: Future = Future()

        def fire() -> None:
            future.set_result(
                protocol.ok_response(request.get("id"), {"cached": False})
            )

        threading.Timer(0.3, fire).start()
        return future
