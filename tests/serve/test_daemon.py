"""JSON-lines daemon loop: framing, correlation ids, shutdown, and the
end-to-end CLI surface (`repro serve` / `repro submit`)."""

import io
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.serve.broker import Broker, BrokerConfig
from repro.serve.daemon import serve_loop

SRC = """
kernel axpy(const double x[1:n], double y[1:n], int n) {
  #pragma acc kernels loop gang vector(64)
  for (i = 1; i < n; i++) {
    y[i] = x[i] + y[i];
  }
}
"""

REPO = Path(__file__).resolve().parents[2]


def run_lines(requests, config=None):
    """Feed request lines through serve_loop; return responses by id."""
    lines = "\n".join(
        r if isinstance(r, str) else json.dumps(r) for r in requests
    )
    out = io.StringIO()
    with Broker(config or BrokerConfig(workers=2)) as broker:
        rc = serve_loop(broker, stdin=io.StringIO(lines + "\n"), stdout=out)
    assert rc == 0
    responses = [json.loads(line) for line in out.getvalue().splitlines()]
    return responses


class TestServeLoop:
    def test_compile_then_shutdown(self):
        responses = run_lines(
            [
                {"id": 1, "op": "compile", "source": SRC},
                {"id": 2, "op": "shutdown"},
            ]
        )
        by_id = {r["id"]: r for r in responses}
        assert by_id[1]["ok"] and by_id[1]["result"]["kernels"]
        assert by_id[2]["ok"] and by_id[2]["result"] == {"stopping": True}

    def test_eof_ends_loop_and_answers_everything(self):
        responses = run_lines(
            [{"id": i, "op": "compile", "source": SRC} for i in range(4)]
        )
        assert sorted(r["id"] for r in responses) == [0, 1, 2, 3]
        assert all(r["ok"] for r in responses)

    def test_bad_json_line_answers_and_continues(self):
        responses = run_lines(
            [
                "this is not json {",
                {"id": 7, "op": "stats"},
            ]
        )
        assert responses[0]["ok"] is False
        assert responses[0]["error"]["code"] == "bad_json"
        assert responses[0]["id"] is None
        by_id = {r["id"]: r for r in responses}
        assert by_id[7]["ok"]

    def test_blank_lines_skipped(self):
        responses = run_lines(["", "   ", json.dumps({"id": 1, "op": "stats"})])
        assert len(responses) == 1 and responses[0]["ok"]

    def test_every_response_is_one_json_line(self):
        out = io.StringIO()
        requests = "\n".join(
            json.dumps({"id": i, "op": "compile", "source": SRC})
            for i in range(3)
        )
        with Broker(BrokerConfig(workers=3)) as broker:
            serve_loop(broker, stdin=io.StringIO(requests + "\n"), stdout=out)
        for line in out.getvalue().splitlines():
            parsed = json.loads(line)  # each line parses independently
            assert set(parsed) >= {"id", "ok"}


class TestCliEndToEnd:
    def test_serve_subprocess_round_trip(self, tmp_path):
        """The real daemon over a pipe: compile, stats, shutdown.  One
        worker makes processing serial, so the stats snapshot (id 2) is
        taken after the compile (id 1) finished."""
        requests = "\n".join(
            json.dumps(r)
            for r in [
                {"id": 1, "op": "compile", "source": SRC},
                {"id": 2, "op": "stats"},
                {"id": 3, "op": "shutdown"},
            ]
        )
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--workers", "1",
             "--cache-dir", str(tmp_path)],
            input=requests + "\n",
            capture_output=True,
            text=True,
            timeout=120,
            cwd=REPO,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        responses = {
            r["id"]: r
            for r in (json.loads(line) for line in proc.stdout.splitlines())
        }
        assert responses[1]["ok"]
        assert responses[1]["result"]["kernels"][0]["registers"] > 0
        assert responses[2]["ok"]
        assert responses[2]["result"]["disk_cache"]["writes"] == 1
        assert responses[3]["ok"]
        # protocol lines only on stdout; banner went to stderr
        assert "repro serve:" in proc.stderr

    def test_submit_one_shot(self, tmp_path):
        source_file = tmp_path / "axpy.acc"
        source_file.write_text(SRC)
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "submit", str(source_file),
             "--env", "n=128", "--run"],
            capture_output=True,
            text=True,
            timeout=120,
            cwd=REPO,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        response = json.loads(proc.stdout)
        assert response["ok"]
        assert response["result"]["stats"]["iterations"] == 127
