"""Fleet serving: placement-aware routing across a multi-arch broker.

The acceptance property: a broker configured with a two-arch fleet
routes each benchmark request to the *modeled-best* arch — the placement
decision's winner is exactly the candidate with the lowest modeled time,
never a worse one.
"""

import pytest

from repro.errors import ConfigError, UnknownArchError, raise_for_response
from repro.obs.tracer import Tracer
from repro.serve.broker import Broker, BrokerConfig

FLEET = ("kepler-k20xm", "cdna2-mi250")

SRC = """
kernel axpy(const double x[1:n], double y[1:n], int n) {
  #pragma acc kernels loop gang vector(64)
  for (i = 1; i < n; i++) {
    y[i] = x[i] + y[i];
  }
}
"""


def make_broker(**overrides) -> Broker:
    defaults = dict(workers=2, fleet=FLEET)
    defaults.update(overrides)
    return Broker(BrokerConfig(**defaults))


def modeled_best(placement: dict) -> str:
    return min(placement["candidates"], key=lambda c: c["model_ms"])["arch"]


class TestFleetConfig:
    def test_fleet_names_normalized_at_construction(self):
        with Broker(BrokerConfig(fleet=("kepler", "mi250"))) as broker:
            assert broker.stats()["broker"]["fleet"] == [
                "kepler-k20xm",
                "cdna2-mi250",
            ]

    def test_bad_fleet_name_fails_at_construction(self):
        with pytest.raises(ConfigError, match="unknown GPU arch"):
            Broker(BrokerConfig(fleet=("kepler", "h100")))

    def test_no_fleet_means_no_placement(self):
        with Broker(BrokerConfig(workers=1)) as broker:
            response = broker.handle(
                {"id": 1, "op": "run", "source": SRC, "env": {"n": 256}}
            )
        assert response["ok"]
        assert "placement" not in response["result"]
        assert response["result"]["arch"] == "kepler-k20xm"


class TestRouting:
    def test_run_routed_to_modeled_best_arch(self):
        with make_broker() as broker:
            response = broker.handle(
                {"id": 1, "op": "run", "source": SRC, "env": {"n": 256}}
            )
        assert response["ok"]
        result = response["result"]
        placement = result["placement"]
        assert [c["arch"] for c in placement["candidates"]] == list(FLEET)
        assert result["arch"] == placement["arch"] == modeled_best(placement)
        assert placement["reason"] == "modeled"

    def test_compile_routed_and_reports_placement(self):
        with make_broker() as broker:
            response = broker.handle(
                {"id": 1, "op": "compile", "source": SRC, "env": {"n": 4096}}
            )
        result = response["result"]
        assert result["arch"] == modeled_best(result["placement"])
        assert result["timing"]["total_ms"] > 0

    def test_every_benchmark_run_routed_to_modeled_best(self):
        """The acceptance sweep: each benchmark's compile request lands on
        the candidate with the lowest modeled time at its problem size."""
        from repro.bench import SPEC, load_all

        load_all()
        names = ("303.ostencil", "304.olbm", "354.cg")
        with make_broker(workers=4) as broker:
            for request_id, name in enumerate(names):
                spec = SPEC.get(name)
                response = broker.handle(
                    {
                        "id": request_id,
                        "op": "compile",
                        "source": spec.source,
                        "env": dict(spec.env),
                    }
                )
                assert response["ok"], response
                result = response["result"]
                placement = result["placement"]
                assert len(placement["candidates"]) == len(FLEET)
                assert result["arch"] == modeled_best(placement)
                best_ms = min(
                    c["model_ms"] for c in placement["candidates"]
                )
                assert placement["model_ms"] == best_ms

    def test_compile_without_env_skips_placement(self):
        # No problem size -> the timing model cannot rank the fleet.
        with make_broker() as broker:
            response = broker.handle(
                {"id": 1, "op": "compile", "source": SRC}
            )
        assert response["ok"]
        assert "placement" not in response["result"]


class TestPinnedArch:
    def test_pinned_arch_skips_the_policy(self):
        with make_broker() as broker:
            response = broker.handle(
                {
                    "id": 1,
                    "op": "run",
                    "source": SRC,
                    "env": {"n": 256},
                    "arch": "fermi",
                }
            )
            pinned = broker.metrics.get("serve.placement.pinned").value
        result = response["result"]
        assert result["arch"] == "fermi-like"
        assert "placement" not in result
        assert pinned == 1

    def test_pinned_arch_may_be_outside_the_fleet(self):
        with make_broker() as broker:
            response = broker.handle(
                {"id": 1, "op": "compile", "source": SRC, "arch": "fermi-like"}
            )
        assert response["result"]["arch"] == "fermi-like"


class TestUnknownArch:
    def test_unknown_arch_is_a_permanent_protocol_error(self):
        with make_broker() as broker:
            response = broker.handle(
                {"id": 1, "op": "compile", "source": SRC, "arch": "h100"}
            )
        assert not response["ok"]
        error = response["error"]
        assert error["code"] == "unknown_arch"
        assert error["retryable"] is False
        assert "cdna2-mi250" in error["message"]
        assert "fleet" in error["message"]

    def test_client_helper_raises_typed_error(self):
        with make_broker() as broker:
            response = broker.handle(
                {"id": 1, "op": "run", "source": SRC, "arch": "h100"}
            )
        with pytest.raises(UnknownArchError, match="registered profiles"):
            raise_for_response(response)

    def test_non_string_arch_rejected_by_validation(self):
        with make_broker() as broker:
            response = broker.handle(
                {"id": 1, "op": "compile", "source": SRC, "arch": 42}
            )
        assert response["error"]["code"] == "bad_request"


class TestObservability:
    def test_placement_metrics_and_span(self):
        tracer = Tracer(enabled=True)
        with make_broker() as broker:
            with tracer.activate():
                broker.handle(
                    {"id": 1, "op": "run", "source": SRC, "env": {"n": 256}}
                )
            decisions = broker.metrics.get("serve.placement.decisions").value
            chosen = {
                arch: broker.metrics.get(f"serve.placement.chosen.{arch}")
                for arch in FLEET
            }
            chosen = {
                arch: int(metric.value)
                for arch, metric in chosen.items()
                if metric is not None
            }
        assert decisions == 1
        spans = [s for s in tracer.spans if s.name == "placement"]
        assert len(spans) == 1
        assert spans[0].args["arch"] in FLEET
        assert spans[0].args["fleet"] == ",".join(FLEET)
        assert sum(chosen.values()) == 1

    def test_placement_cost_amortized_by_the_shared_cache(self):
        with make_broker() as broker:
            first = broker.handle(
                {"id": 1, "op": "compile", "source": SRC, "env": {"n": 4096}}
            )
            second = broker.handle(
                {"id": 2, "op": "compile", "source": SRC, "env": {"n": 4096}}
            )
        assert first["result"]["arch"] == second["result"]["arch"]
        # The chosen variant was already compiled by placement itself.
        assert second["result"]["cached"] == "memory"


class TestFleetTuneOp:
    def test_tune_searches_the_fleet_and_reports_per_arch_bests(self):
        with make_broker() as broker:
            response = broker.handle(
                {
                    "id": 1,
                    "op": "tune",
                    "source": SRC,
                    "env": {"n": 4096},
                    "strategy": "exhaustive",
                }
            )
        assert response["ok"], response
        result = response["result"]
        assert set(result["per_arch_best"]) == set(FLEET)
        archs = {t["point"]["arch"] for t in result["trials"]}
        assert archs == {None, "cdna2-mi250"}  # None = the base (kepler)

    def test_pinned_tune_stays_on_one_arch(self):
        with make_broker() as broker:
            response = broker.handle(
                {
                    "id": 1,
                    "op": "tune",
                    "source": SRC,
                    "env": {"n": 4096},
                    "strategy": "exhaustive",
                    "arch": "cdna2-mi250",
                }
            )
        result = response["result"]
        assert set(result["per_arch_best"]) == {"cdna2-mi250"}
