"""Rendezvous-hash properties the cluster router depends on: bounded
remap under membership churn, distinct replicas, and cross-process
routing determinism (the scores must come from SHA-256, never Python's
randomized ``hash``)."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.serve import hashring

REPO = Path(__file__).resolve().parents[2]

SHARDS_4 = [f"shard-{i}" for i in range(4)]
KEYS = [f"key-{i:04d}" for i in range(2000)]


class TestScore:
    def test_score_is_deterministic_and_64_bit(self):
        a = hashring.score("k", "shard-0")
        assert a == hashring.score("k", "shard-0")
        assert 0 <= a < 2**64

    def test_score_varies_with_shard_and_key(self):
        assert hashring.score("k", "shard-0") != hashring.score("k", "shard-1")
        assert hashring.score("k1", "shard-0") != hashring.score(
            "k2", "shard-0"
        )


class TestRank:
    def test_rank_is_a_permutation(self):
        for key in KEYS[:50]:
            order = hashring.rank(key, SHARDS_4)
            assert sorted(order) == sorted(SHARDS_4)

    def test_rank_ignores_input_order(self):
        for key in KEYS[:50]:
            assert hashring.rank(key, SHARDS_4) == hashring.rank(
                key, list(reversed(SHARDS_4))
            )

    def test_route_is_top_rank(self):
        for key in KEYS[:50]:
            assert hashring.route(key, SHARDS_4) == hashring.rank(
                key, SHARDS_4
            )[0]

    def test_route_over_empty_membership_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            hashring.route("k", [])


class TestReplicas:
    def test_replicas_are_distinct_shards(self):
        for key in KEYS:
            reps = hashring.replicas(key, SHARDS_4, 3)
            assert len(reps) == 3
            assert len(set(reps)) == 3

    def test_replicas_clamped_to_membership(self):
        assert len(hashring.replicas("k", SHARDS_4, 99)) == 4

    def test_replica_count_must_be_positive(self):
        with pytest.raises(ValueError, match=">= 1"):
            hashring.replicas("k", SHARDS_4, 0)

    def test_first_replica_is_the_route(self):
        for key in KEYS[:50]:
            assert hashring.replicas(key, SHARDS_4, 2)[0] == hashring.route(
                key, SHARDS_4
            )


class TestStability:
    """Membership churn only remaps the expected ~1/N key fraction."""

    def test_removal_remaps_about_one_nth(self):
        removed = SHARDS_4[:-1]
        moved = hashring.remap_fraction(KEYS, SHARDS_4, removed)
        # Expected 1/4; allow generous sampling slack over 2000 keys.
        assert 0.15 < moved < 0.35

    def test_removal_only_moves_keys_owned_by_the_removed_shard(self):
        removed = SHARDS_4[:-1]
        for key in KEYS:
            before = hashring.route(key, SHARDS_4)
            after = hashring.route(key, removed)
            if before != SHARDS_4[-1]:
                assert after == before  # survivors keep their keys

    def test_addition_remaps_about_one_over_n_plus_one(self):
        grown = SHARDS_4 + ["shard-4"]
        moved = hashring.remap_fraction(KEYS, SHARDS_4, grown)
        assert 0.10 < moved < 0.30

    def test_spread_is_roughly_uniform(self):
        counts: dict[str, int] = {}
        for key in KEYS:
            owner = hashring.route(key, SHARDS_4)
            counts[owner] = counts.get(owner, 0) + 1
        for shard in SHARDS_4:
            assert counts[shard] / len(KEYS) == pytest.approx(0.25, abs=0.07)

    def test_remap_fraction_of_no_keys_is_zero(self):
        assert hashring.remap_fraction([], SHARDS_4, SHARDS_4[:-1]) == 0.0


class TestCrossProcessDeterminism:
    def test_subprocess_ranks_identically(self):
        """A fresh interpreter (fresh PYTHONHASHSEED) must produce the
        same routing decisions — the property that lets N independent
        router/shard processes agree without coordination."""
        keys = KEYS[:200]
        local = [hashring.route(k, SHARDS_4) for k in keys]
        program = (
            "import sys, json\n"
            "from repro.serve import hashring\n"
            "keys, shards = json.load(sys.stdin)\n"
            "json.dump([hashring.route(k, shards) for k in keys], sys.stdout)\n"
        )
        import json

        proc = subprocess.run(
            [sys.executable, "-c", program],
            input=json.dumps([keys, SHARDS_4]),
            capture_output=True,
            text=True,
            timeout=60,
            env={
                "PYTHONPATH": str(REPO / "src"),
                "PATH": "/usr/bin:/bin",
                "PYTHONHASHSEED": "random",
            },
        )
        assert proc.returncode == 0, proc.stderr
        assert json.loads(proc.stdout) == local
