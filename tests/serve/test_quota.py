"""Per-tenant token buckets: continuous refill, burst ceiling, no
partial debit, and the anonymous-tenant charging rule.  All driven by an
injected clock — no sleeps."""

import pytest

from repro.serve.quota import TenantQuotas, TokenBucket


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestTokenBucket:
    def test_burst_is_available_immediately(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [
            True, True, True, False,
        ]

    def test_refill_is_continuous(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=clock)
        assert bucket.try_acquire() and bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(0.5)  # 2 tokens/s x 0.5s = 1 token back
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_never_exceeds_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2.0, clock=clock)
        clock.advance(1000.0)
        assert bucket.tokens == 2.0

    def test_no_partial_debit_on_refusal(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        assert not bucket.try_acquire(5.0)
        assert bucket.tokens == 2.0  # the failed acquire cost nothing

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="rate"):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError, match="burst"):
            TokenBucket(rate=1.0, burst=0.5)


class TestTenantQuotas:
    def test_tenants_have_independent_buckets(self):
        clock = FakeClock()
        quotas = TenantQuotas(rate=1.0, burst=1.0, clock=clock)
        assert quotas.try_acquire("a")
        assert quotas.try_acquire("b")  # b's bucket untouched by a
        assert not quotas.try_acquire("a")

    def test_anonymous_requests_share_one_bucket(self):
        clock = FakeClock()
        quotas = TenantQuotas(rate=1.0, burst=2.0, clock=clock)
        assert quotas.try_acquire(None)
        assert quotas.try_acquire("")  # empty string is anonymous too
        assert not quotas.try_acquire(None)

    def test_snapshot_lists_balances(self):
        clock = FakeClock()
        quotas = TenantQuotas(rate=1.0, burst=3.0, clock=clock)
        quotas.try_acquire("acme")
        quotas.try_acquire(None)
        snap = quotas.snapshot()
        assert snap == {"_anonymous": 2.0, "acme": 2.0}

    def test_refill_applies_per_tenant(self):
        clock = FakeClock()
        quotas = TenantQuotas(rate=10.0, burst=1.0, clock=clock)
        assert quotas.try_acquire("t")
        assert not quotas.try_acquire("t")
        clock.advance(0.2)  # comfortably past one token of refill
        assert quotas.try_acquire("t")
