"""Unix-socket daemon: round-trip serving, the client library, watch
streaming, and the daemon half of the tracing acceptance property — a
request served over the socket yields a connected trace retrievable via
the ``trace`` op on the same connection."""

import json
import threading

import pytest

from repro.obs.flight import span_tree
from repro.serve.broker import Broker, BrokerConfig
from repro.serve.client import SocketClient
from repro.serve.daemon import SocketServer

FLEET = ("kepler-k20xm", "cdna2-mi250")

SRC = """
kernel axpy(const double x[1:n], double y[1:n], int n) {
  #pragma acc kernels loop gang vector(64)
  for (i = 1; i < n; i++) {
    y[i] = x[i] + y[i];
  }
}
"""


@pytest.fixture()
def served(tmp_path):
    """A live broker behind a unix socket; yields the socket path."""
    broker = Broker(BrokerConfig(workers=2, fleet=FLEET))
    server = SocketServer(broker, str(tmp_path / "repro.sock"))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server.path
    finally:
        server.close()
        thread.join(timeout=5)
        broker.drain()


def run_request(request_id=1, **fields) -> dict:
    return {
        "id": request_id,
        "op": "run",
        "source": SRC,
        "env": {"n": 64},
        **fields,
    }


class TestRoundTrip:
    def test_run_over_socket(self, served):
        with SocketClient(served) as client:
            response = client.request(run_request())
            assert response["ok"]
            assert response["result"]["elements"] == 63

    def test_concurrent_connections(self, served):
        results = {}

        def work(i):
            with SocketClient(served) as client:
                results[i] = client.request(run_request(i))

        threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 4
        assert all(r["ok"] for r in results.values())

    def test_protocol_error_over_socket(self, served):
        with SocketClient(served) as client:
            response = client.request({"op": "frobnicate"})
            assert response["ok"] is False
            assert response["error"]["code"] == "bad_request"

    def test_stats_helper(self, served):
        with SocketClient(served) as client:
            stats = client.stats()["result"]
            assert stats["broker"]["workers"] == 2
            assert "flight" in stats


class TestDaemonTraceAcceptance:
    """The daemon half of the acceptance criterion: a socket round-trip
    produces the same connected, Perfetto-loadable trace as in-process."""

    def test_socket_request_yields_connected_trace(self, served):
        with SocketClient(served) as client:
            response = client.request(run_request(trace_id="sock-1"))
            assert response["ok"]
            assert response["trace_id"] == "sock-1"

            looked_up = client.trace(trace_id="sock-1")["result"]
            assert looked_up["found"] is True
            record = looked_up["record"]
            names = {s["name"] for s in record["spans"]}
            assert {"request", "queue.wait", "placement", "compile",
                    "execute"} <= names
            for s in record["spans"]:
                assert s["args"]["trace_id"] == "sock-1"
            roots = span_tree(record["spans"])
            assert [r["name"] for r in roots] == ["request"]

    def test_perfetto_document_over_socket(self, served):
        with SocketClient(served) as client:
            client.request(run_request(trace_id="sock-p"))
            looked_up = client.trace(trace_id="sock-p", perfetto=True)["result"]
            doc = looked_up["chrome"]
            text = json.dumps(doc)
            assert "traceEvents" in doc
            complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
            assert {e["name"] for e in complete} >= {
                "request", "queue.wait", "placement", "compile", "execute"
            }
            assert "sock-p" in text

    def test_trace_listing_over_socket(self, served):
        with SocketClient(served) as client:
            client.request(run_request(1, trace_id="sl-1"))
            client.request(run_request(2, trace_id="sl-2"))
            snap = client.trace()["result"]
            assert snap["recorded"] >= 2
            assert {r["trace_id"] for r in snap["slowest"]} >= {"sl-1", "sl-2"}


class TestWatchStreaming:
    def test_watch_streams_bounded_frames(self, served):
        with SocketClient(served) as client:
            client.request(run_request())
            frames = list(client.watch(interval_ms=10.0, count=3))
            assert len(frames) == 3
            assert [f["seq"] for f in frames] == [0, 1, 2]
            for frame in frames:
                assert frame["requests"]["run"] == 1
                assert "latency_ms" in frame
            # Monotonic frame stamps.
            stamps = [f["ts"] for f in frames]
            assert stamps == sorted(stamps)

    def test_watch_then_regular_requests_same_connection(self, served):
        with SocketClient(served) as client:
            frames = list(client.watch(interval_ms=5.0, count=1))
            assert len(frames) == 1
            response = client.request(run_request())
            assert response["ok"]

    def test_watch_does_not_occupy_broker_workers(self, tmp_path):
        # A single-worker broker must keep serving while a watch streams.
        broker = Broker(BrokerConfig(workers=1, fleet=FLEET))
        server = SocketServer(broker, str(tmp_path / "one.sock"))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with SocketClient(server.path) as watcher, \
                    SocketClient(server.path) as worker:
                stream = watcher.watch(interval_ms=20.0, count=50)
                next(stream)  # the stream is live...
                response = worker.request(run_request())  # ...and serving works
                assert response["ok"]
        finally:
            server.close()
            thread.join(timeout=5)
            broker.drain()

    def test_bad_watch_interval_rejected(self, served):
        with SocketClient(served) as client:
            client.send({"id": 9, "op": "watch", "interval_ms": -1})
            response = client.recv()
            assert response["ok"] is False
            assert response["error"]["code"] == "bad_request"


class TestLifecycle:
    def test_shutdown_op_stops_server(self, tmp_path):
        broker = Broker(BrokerConfig(workers=1))
        server = SocketServer(broker, str(tmp_path / "s.sock"))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        with SocketClient(server.path) as client:
            response = client.shutdown()
            assert response["ok"]
        thread.join(timeout=5)
        assert not thread.is_alive()
        server.close()

    def test_stale_socket_file_is_replaced(self, tmp_path):
        path = tmp_path / "stale.sock"
        path.touch()
        broker = Broker(BrokerConfig(workers=1))
        server = SocketServer(broker, str(path))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with SocketClient(server.path) as client:
                assert client.stats()["result"]["broker"]["workers"] == 1
        finally:
            server.close()
            thread.join(timeout=5)
            broker.drain()
