"""Request tracing through the broker: trace_id propagation, the
per-request span tree, the ``trace`` serve op, flight-recorder retention
under serving load, and the ``watch`` telemetry snapshot.

The acceptance property (in-process half; the daemon half lives in
``test_socket.py``): one served ``run`` request produces one connected,
Perfetto-loadable trace whose ``queue.wait``, ``placement``, ``compile``
and ``execute`` spans are all correlated by the request's ``trace_id``.
"""

import json

import pytest

from repro.obs.flight import span_tree
from repro.serve.broker import Broker, BrokerConfig

FLEET = ("kepler-k20xm", "cdna2-mi250")

SRC = """
kernel axpy(const double x[1:n], double y[1:n], int n) {
  #pragma acc kernels loop gang vector(64)
  for (i = 1; i < n; i++) {
    y[i] = x[i] + y[i];
  }
}
"""


def make_broker(**overrides) -> Broker:
    defaults = dict(workers=2, fleet=FLEET)
    defaults.update(overrides)
    return Broker(BrokerConfig(**defaults))


def run_request(request_id=1, **fields) -> dict:
    return {
        "id": request_id,
        "op": "run",
        "source": SRC,
        "env": {"n": 64},
        **fields,
    }


class TestTraceIdEcho:
    def test_client_supplied_id_echoed_on_success(self):
        with make_broker() as broker:
            response = broker.handle(run_request(trace_id="req-abc"))
            assert response["ok"]
            assert response["trace_id"] == "req-abc"

    def test_generated_when_absent(self):
        with make_broker() as broker:
            r1 = broker.handle(run_request(1))
            r2 = broker.handle(run_request(2))
            assert r1["trace_id"] and r2["trace_id"]
            assert r1["trace_id"] != r2["trace_id"]

    def test_echoed_on_handler_errors(self):
        with make_broker() as broker:
            response = broker.handle(
                {"id": 1, "op": "compile", "source": "kernel oops( {",
                 "trace_id": "bad-src"}
            )
            assert response["ok"] is False
            assert response["trace_id"] == "bad-src"

    def test_echoed_on_admission_rejection(self):
        with make_broker() as broker:
            response = broker.handle(
                {"id": 1, "op": "frobnicate", "trace_id": "rej-1"}
            )
            assert response["ok"] is False
            assert response["error"]["code"] == "bad_request"
            assert response["trace_id"] == "rej-1"

    def test_invalid_trace_id_is_rejected_with_generated_id(self):
        with make_broker() as broker:
            response = broker.handle(run_request(trace_id="x" * 129))
            assert response["ok"] is False
            assert response["error"]["code"] == "bad_request"
            # The bogus id is not echoed back as a correlation key.
            assert response["trace_id"] != "x" * 129

    def test_rejections_are_flight_recorded_spanless(self):
        with make_broker() as broker:
            broker.handle({"id": 1, "op": "frobnicate", "trace_id": "rej-2"})
            rec = broker.flight.get("rej-2")
            assert rec is not None
            assert rec.op == "(rejected)" and rec.ok is False
            assert rec.spans == []


class TestRequestTrace:
    """One run request → one connected span tree."""

    def test_run_trace_has_all_acceptance_spans(self):
        with make_broker() as broker:
            response = broker.handle(run_request(trace_id="acc-1"))
            assert response["ok"]
            rec = broker.flight.get("acc-1")
            assert rec is not None
            names = {s["name"] for s in rec.spans}
            assert {"request", "queue.wait", "placement", "compile",
                    "execute"} <= names

    def test_every_span_carries_the_trace_id(self):
        with make_broker() as broker:
            broker.handle(run_request(trace_id="acc-2"))
            rec = broker.flight.get("acc-2")
            assert rec.spans
            for s in rec.spans:
                assert s["args"]["trace_id"] == "acc-2", s["name"]

    def test_tree_is_connected_under_a_single_request_root(self):
        with make_broker() as broker:
            broker.handle(run_request(trace_id="acc-3"))
            rec = broker.flight.get("acc-3")
            roots = span_tree(rec.spans)
            assert [r["name"] for r in roots] == ["request"]
            names = set()

            def walk(node):
                names.add(node["name"])
                for child in node["children"]:
                    walk(child)

            walk(roots[0])
            assert {"queue.wait", "placement", "compile", "execute"} <= names

    def test_compile_request_traces_compile_span(self):
        with make_broker() as broker:
            broker.handle(
                {"id": 1, "op": "compile", "source": SRC, "trace_id": "c-1"}
            )
            rec = broker.flight.get("c-1")
            names = {s["name"] for s in rec.spans}
            assert {"request", "queue.wait", "compile"} <= names

    def test_span_overflow_is_counted_not_silent(self):
        with make_broker(trace_max_spans=2) as broker:
            broker.handle(run_request(trace_id="tiny"))
            rec = broker.flight.get("tiny")
            assert len(rec.spans) <= 3  # collector bound + synthesized root
            assert rec.dropped_spans > 0


class TestTraceOp:
    def test_lookup_found(self):
        with make_broker() as broker:
            broker.handle(run_request(trace_id="t-1"))
            response = broker.handle(
                {"id": 2, "op": "trace", "trace_id": "t-1"}
            )
            assert response["ok"]
            result = response["result"]
            assert result["found"] is True
            assert result["record"]["trace_id"] == "t-1"
            assert result["record"]["span_tree"][0]["name"] == "request"

    def test_lookup_missing_is_not_an_error(self):
        with make_broker() as broker:
            response = broker.handle(
                {"id": 1, "op": "trace", "trace_id": "never-served"}
            )
            assert response["ok"]
            assert response["result"]["found"] is False
            assert response["result"]["record"] is None

    def test_listing_returns_flight_snapshot(self):
        with make_broker() as broker:
            broker.handle(run_request(1, trace_id="list-1"))
            broker.handle(run_request(2, trace_id="list-2"))
            response = broker.handle({"id": 3, "op": "trace"})
            assert response["ok"]
            snap = response["result"]
            assert snap["recorded"] >= 2
            ids = {r["trace_id"] for r in snap["slowest"]}
            assert {"list-1", "list-2"} <= ids

    def test_perfetto_export_is_chrome_trace_shaped(self):
        with make_broker() as broker:
            broker.handle(run_request(trace_id="p-1"))
            response = broker.handle(
                {"id": 2, "op": "trace", "trace_id": "p-1", "perfetto": True}
            )
            doc = response["result"]["chrome"]
            json.dumps(doc)  # JSON-serializable end to end
            events = doc["traceEvents"]
            complete = [e for e in events if e["ph"] == "X"]
            assert {e["name"] for e in complete} >= {
                "request", "queue.wait", "placement", "compile", "execute"
            }
            assert all(e["args"]["trace_id"] == "p-1" for e in complete)
            assert doc["otherData"]["trace_id"] == "p-1"


class TestFlightRetentionUnderLoad:
    def test_bounded_retention_while_serving(self):
        with make_broker(flight_slow=4, flight_errors=2) as broker:
            for i in range(12):
                broker.handle(run_request(i, trace_id=f"load-{i}"))
            for i in range(4):
                broker.handle(
                    {"id": 100 + i, "op": "compile",
                     "source": "kernel oops( {", "trace_id": f"err-{i}"}
                )
            assert len(broker.flight.slowest()) == 4
            assert len(broker.flight.errors()) == 2
            assert broker.flight.recorded == 16
            # Newest errors retained.
            assert [r.trace_id for r in broker.flight.errors()] == [
                "err-3", "err-2"
            ]

    def test_stats_expose_flight_counters(self):
        with make_broker() as broker:
            broker.handle(run_request(trace_id="s-1"))
            flight = broker.stats()["flight"]
            assert flight["recorded"] == 1
            assert flight["slow_retained"] == 1
            assert flight["errors_retained"] == 0


class TestDegradationAttribution:
    def test_degradation_events_carry_the_trace_id(self):
        # A sky-high degrade threshold forces the deadline-pressure
        # demotion on every run request.
        with make_broker(degrade_threshold_ms=10 ** 6) as broker:
            response = broker.handle(run_request(trace_id="deg-1"))
            assert response["ok"]
            rec = broker.flight.get("deg-1")
            assert rec.degradations, "expected a deadline_pressure event"
            for event in rec.degradations:
                assert event["trace_id"] == "deg-1"
            assert any(
                e["reason"] == "deadline_pressure" for e in rec.degradations
            )

    def test_untraced_requests_have_no_degradations(self):
        with make_broker() as broker:
            broker.handle(run_request(trace_id="clean-1"))
            rec = broker.flight.get("clean-1")
            assert rec.degradations == []


class TestExecutionRecordTagging:
    def test_session_execution_record_carries_trace_id(self):
        with make_broker(workers=1) as broker:
            broker.handle(run_request(trace_id="exec-1"))
            traces = [
                t
                for session in broker._all_sessions
                for t in session.stats.execution_traces
            ]
            assert traces, "run request should record an execution"
            assert traces[-1]["trace_id"] == "exec-1"

    def test_direct_session_use_is_untagged(self):
        from repro.compiler.session import CompilerSession
        from repro.lang.parser import parse_program
        from repro.ir.builder import build_module

        session = CompilerSession()
        fn = build_module(parse_program(SRC)).functions[0]
        import numpy as np

        x = np.ones(8)
        y = np.ones(8)
        session.execute(fn, {"x": x, "y": y, "n": 8})
        assert "trace_id" not in session.stats.execution_traces[-1]


class TestWatchOp:
    def test_in_process_watch_returns_one_snapshot(self):
        with make_broker() as broker:
            broker.handle(run_request(trace_id="w-1"))
            response = broker.handle({"id": 2, "op": "watch"})
            assert response["ok"]
            frame = response["result"]
            assert frame["requests"]["run"] == 1
            assert frame["requests_total"] >= 1
            # The watch request itself is in flight while snapshotting.
            assert frame["queue_depth"] == 1
            assert frame["workers"] == 2
            assert frame["flight_recorded"] >= 1
            assert "uptime_s" in frame and frame["uptime_s"] >= 0
            assert set(frame["degradations"]) == {
                "total", "deadline", "vector_fallback"
            }
            assert set(frame["cache"]) == {
                "memory_hit_rate", "disk_hit_rate", "fnobj_hit_rate"
            }
            json.dumps(frame)

    def test_snapshot_latency_quantiles_populate(self):
        with make_broker() as broker:
            for i in range(3):
                broker.handle(run_request(i))
            frame = broker.telemetry_snapshot()
            lat = frame["latency_ms"]["run"]
            assert lat["count"] == 3
            assert lat["p50"] > 0 and lat["p999"] >= lat["p50"]

    def test_snapshot_placement_counts_fleet_choices(self):
        with make_broker() as broker:
            broker.handle(run_request())
            frame = broker.telemetry_snapshot()
            assert sum(frame["placement"].values()) >= 1
            assert set(frame["placement"]) <= set(FLEET)

    def test_watch_validation_rejects_bad_interval(self):
        with make_broker() as broker:
            response = broker.handle(
                {"id": 1, "op": "watch", "interval_ms": -5}
            )
            assert response["ok"] is False
            assert response["error"]["code"] == "bad_request"
