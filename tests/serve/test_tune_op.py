"""The ``tune`` op of the serve protocol: validation, execution through
the broker, deadline behavior, and the shared tuning ledger."""

import pytest

from repro.serve import protocol
from repro.serve.broker import Broker, BrokerConfig
from repro.serve.protocol import ServeError, validate_request

SRC = """
kernel axpy(const double x[1:n], double y[1:n], int n) {
  #pragma acc kernels loop gang vector(64)
  for (i = 1; i < n; i++) {
    y[i] = x[i] + y[i];
  }
}
"""


def tune_request(request_id=1, **fields):
    req = {"id": request_id, "op": "tune", "source": SRC, "env": {"n": 64},
           "strategy": "exhaustive", "budget": 4}
    req.update(fields)
    return req


class TestValidation:
    def test_tune_is_a_valid_op(self):
        assert "tune" in protocol.VALID_OPS
        assert validate_request(tune_request()) is not None

    def test_source_required(self):
        with pytest.raises(ServeError, match="source"):
            validate_request({"op": "tune", "env": {"n": 4}})

    def test_env_required_and_non_empty(self):
        with pytest.raises(ServeError, match="env"):
            validate_request({"op": "tune", "source": SRC})
        with pytest.raises(ServeError, match="env"):
            validate_request({"op": "tune", "source": SRC, "env": {}})

    def test_budget_must_be_a_positive_int(self):
        for bad in (0, -1, "4", True, 1.5):
            with pytest.raises(ServeError, match="budget"):
                validate_request(tune_request(budget=bad))

    def test_launches_must_be_a_positive_int(self):
        with pytest.raises(ServeError, match="launches"):
            validate_request(tune_request(launches=0))

    def test_strategy_must_be_a_string(self):
        with pytest.raises(ServeError, match="strategy"):
            validate_request(tune_request(strategy=7))


class TestBrokerTune:
    def test_tune_round_trip(self):
        with Broker(BrokerConfig(workers=2)) as broker:
            response = broker.handle(tune_request())
        assert response["ok"]
        result = response["result"]
        assert result["best"]["model_ms"] <= result["reference"]["model_ms"]
        assert result["trials"]
        assert result["evaluated"] <= 4

    def test_unknown_strategy_maps_to_tune_error(self):
        with Broker(BrokerConfig(workers=1)) as broker:
            response = broker.handle(tune_request(strategy="zzz"))
        assert not response["ok"]
        assert response["error"]["code"] == protocol.TUNE_ERROR

    def test_parse_error_keeps_its_code(self):
        with Broker(BrokerConfig(workers=1)) as broker:
            response = broker.handle(tune_request(source="kernel oops( {"))
        assert not response["ok"]
        assert response["error"]["code"] == protocol.PARSE_ERROR

    def test_unknown_config_rejected(self):
        with Broker(BrokerConfig(workers=1)) as broker:
            response = broker.handle(tune_request(config="zzz"))
        assert not response["ok"]
        assert response["error"]["code"] == protocol.UNKNOWN_CONFIG

    def test_ledger_persists_across_requests(self, tmp_path):
        ledger = str(tmp_path / "tune_ledger.json")
        with Broker(BrokerConfig(workers=2, tune_ledger=ledger)) as broker:
            cold = broker.handle(tune_request())
            warm = broker.handle(tune_request(request_id=2))
        assert cold["ok"] and warm["ok"]
        assert cold["result"]["ledger"]["misses"] > 0
        assert warm["result"]["evaluated"] == 0
        assert warm["result"]["ledger"]["hits"] == len(warm["result"]["trials"])

    def test_ledger_defaults_into_the_cache_dir(self, tmp_path):
        cache = tmp_path / "cache"
        with Broker(BrokerConfig(workers=1, cache_dir=str(cache))) as broker:
            response = broker.handle(tune_request(budget=2))
        assert response["ok"]
        assert response["result"]["ledger"]["path"] == str(
            cache / "tune_ledger.json"
        )
        assert (cache / "tune_ledger.json").exists()

    def test_tiny_deadline_yields_deadline_exceeded(self):
        with Broker(BrokerConfig(workers=1)) as broker:
            response = broker.handle(tune_request(deadline_ms=0.011))
        assert not response["ok"]
        assert response["error"]["code"] in (
            protocol.DEADLINE_EXCEEDED, protocol.TUNE_ERROR,
        )
