"""The unified error hierarchy and its 1:1 serve-protocol code mapping.

The contract under test: every failure the toolchain raises descends
from :class:`repro.errors.ReproError`; every wire error code maps to
exactly one exception type, in both directions; and a ``repro submit``
failure round-trips through the broker to the *same* exception type the
in-process call would have raised.
"""

import pytest

import repro.errors as errors
from repro.errors import (
    BadRequestError,
    CacheError,
    CompileFailedError,
    ConfigError,
    ExecutionFailedError,
    InternalServiceError,
    ProtocolError,
    QueueFullError,
    QuotaExceededError,
    ReproError,
    ShardUnavailableError,
    ShuttingDownError,
    TuneError,
    UnknownConfigError,
    code_for,
    error_for,
    raise_for_response,
)
from repro.serve import protocol


class TestHierarchy:
    def test_every_family_descends_from_repro_error(self):
        from repro.feedback.driver import FeedbackError, FeedbackTimeout
        from repro.lang.errors import MiniAccError, ParseError

        for cls in (
            CacheError, ConfigError, TuneError, ProtocolError,
            MiniAccError, ParseError, FeedbackError, FeedbackTimeout,
        ):
            assert issubclass(cls, ReproError), cls

    def test_value_error_compatibility_is_kept(self):
        assert issubclass(CacheError, ValueError)
        assert issubclass(ConfigError, ValueError)

    def test_lazy_reexports_resolve(self):
        assert errors.MiniAccError is not None
        assert errors.FeedbackTimeout is not None
        assert errors.ServeError is protocol.ServeError
        with pytest.raises(AttributeError):
            errors.NoSuchError

    def test_dir_lists_reexports(self):
        listing = dir(errors)
        assert "MiniAccError" in listing and "TuneError" in listing


class TestCodeMapping:
    def test_every_protocol_code_maps_to_exactly_one_type(self):
        codes = [
            protocol.BAD_JSON, protocol.BAD_REQUEST, protocol.UNKNOWN_CONFIG,
            protocol.UNKNOWN_ARCH, protocol.PARSE_ERROR, protocol.QUEUE_FULL,
            protocol.DEADLINE_EXCEEDED, protocol.TRANSIENT_FAILURE,
            protocol.COMPILE_ERROR, protocol.EXECUTION_ERROR,
            protocol.TUNE_ERROR, protocol.SHUTTING_DOWN, protocol.INTERNAL,
            protocol.QUOTA_EXCEEDED, protocol.SHARD_UNAVAILABLE,
        ]
        seen = {}
        for code in codes:
            exc = error_for(code, "msg")
            assert isinstance(exc, ReproError), code
            seen.setdefault(type(exc), set()).add(code)
        # bad_json/bad_request legitimately share BadRequestError; every
        # other type owns exactly one code.
        for cls, owned in seen.items():
            if cls is BadRequestError:
                assert owned == {protocol.BAD_JSON, protocol.BAD_REQUEST}
            else:
                assert len(owned) == 1, (cls, owned)

    def test_code_for_inverts_error_for(self):
        for code in (
            protocol.UNKNOWN_CONFIG, protocol.QUEUE_FULL, protocol.PARSE_ERROR,
            protocol.DEADLINE_EXCEEDED, protocol.COMPILE_ERROR,
            protocol.EXECUTION_ERROR, protocol.TUNE_ERROR,
            protocol.SHUTTING_DOWN, protocol.INTERNAL,
            protocol.QUOTA_EXCEEDED, protocol.SHARD_UNAVAILABLE,
        ):
            assert code_for(error_for(code, "msg")) == code

    def test_subclasses_map_to_the_family_code(self):
        from repro.lang.errors import LexError, ParseError

        assert code_for(ParseError("x")) == protocol.PARSE_ERROR
        assert code_for(LexError("x")) == protocol.PARSE_ERROR

    def test_tune_error_code_agrees_with_the_tune_package(self):
        from repro.tune import tune_error_code

        assert code_for(TuneError("x")) == tune_error_code == protocol.TUNE_ERROR

    def test_unknown_inputs_degrade_to_internal(self):
        assert isinstance(error_for("zzz_new_code", "m"), InternalServiceError)
        assert code_for(KeyError("zzz")) == protocol.INTERNAL

    def test_protocol_error_carries_its_own_code(self):
        assert code_for(QueueFullError("full")) == protocol.QUEUE_FULL
        assert code_for(ShuttingDownError("bye")) == protocol.SHUTTING_DOWN
        assert QueueFullError.retryable is True
        assert CompileFailedError.retryable is False

    def test_cluster_codes_are_retryable(self):
        # Both answer conditions that clear on their own (quota refill,
        # a shard rejoining), so clients are told to back off and retry.
        assert code_for(QuotaExceededError("slow down")) == (
            protocol.QUOTA_EXCEEDED
        )
        assert code_for(ShardUnavailableError("gone")) == (
            protocol.SHARD_UNAVAILABLE
        )
        assert QuotaExceededError.retryable is True
        assert ShardUnavailableError.retryable is True
        assert protocol.QUOTA_EXCEEDED in protocol.RETRYABLE_CODES
        assert protocol.SHARD_UNAVAILABLE in protocol.RETRYABLE_CODES


class TestRaiseForResponse:
    def test_ok_response_returns_result(self):
        response = protocol.ok_response(1, {"answer": 42})
        assert raise_for_response(response) == {"answer": 42}

    def test_error_response_raises_the_mapped_type(self):
        response = protocol.error_response(
            1, protocol.UNKNOWN_CONFIG, "no such config"
        )
        with pytest.raises(UnknownConfigError, match="no such config"):
            raise_for_response(response)

    def test_retryable_verdict_is_attached(self):
        response = protocol.error_response(
            1, protocol.QUEUE_FULL, "busy", retryable=True
        )
        with pytest.raises(QueueFullError) as exc_info:
            raise_for_response(response)
        assert exc_info.value.retryable is True

    def test_non_response_is_a_bad_request(self):
        with pytest.raises(BadRequestError):
            raise_for_response({"nope": 1})

    def test_tune_error_round_trips(self):
        response = protocol.error_response(
            7, protocol.TUNE_ERROR, "unknown strategy 'zzz'"
        )
        with pytest.raises(TuneError, match="unknown strategy"):
            raise_for_response(response)


class TestBrokerRoundTrip:
    """A broker failure raises the same type in-process and over the wire."""

    def test_parse_error_round_trips_through_the_broker(self):
        from repro.lang.errors import MiniAccError
        from repro.serve.broker import Broker, BrokerConfig

        with Broker(BrokerConfig(workers=1)) as broker:
            response = broker.handle(
                {"id": 1, "op": "compile", "source": "kernel oops( {"}
            )
        assert not response["ok"]
        with pytest.raises(MiniAccError):
            raise_for_response(response)

    def test_tune_validation_error_round_trips(self):
        from repro.serve.broker import Broker, BrokerConfig

        src = """
kernel axpy(const double x[1:n], double y[1:n], int n) {
  #pragma acc kernels loop gang vector(64)
  for (i = 1; i < n; i++) {
    y[i] = x[i] + y[i];
  }
}
"""
        with Broker(BrokerConfig(workers=1)) as broker:
            response = broker.handle(
                {"id": 1, "op": "tune", "source": src, "env": {"n": 64},
                 "strategy": "zzz"}
            )
        assert not response["ok"]
        assert response["error"]["code"] == protocol.TUNE_ERROR
        with pytest.raises(TuneError, match="unknown strategy"):
            raise_for_response(response)
