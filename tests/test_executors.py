"""The shared executor enum (`repro.executors`): one vocabulary for the
CLI, the session, the serving protocol, and the execution engine."""

import pytest

from repro.errors import ConfigError, ReproError
from repro.executors import EXECUTOR_NAMES, Executor, parse_executor


class TestParsing:
    def test_names_are_the_ladder(self):
        assert EXECUTOR_NAMES == ("auto", "codegen", "vector", "scalar")

    def test_parse_every_name(self):
        for name in EXECUTOR_NAMES:
            assert parse_executor(name).value == name

    def test_none_uses_default(self):
        assert parse_executor(None) is Executor.AUTO
        assert parse_executor(None, default=Executor.SCALAR) is Executor.SCALAR

    def test_enum_passthrough(self):
        assert parse_executor(Executor.CODEGEN) is Executor.CODEGEN

    def test_unknown_names_valid_executors(self):
        with pytest.raises(ConfigError) as exc_info:
            parse_executor("warp")
        message = str(exc_info.value)
        assert "warp" in message
        for name in EXECUTOR_NAMES:
            assert name in message

    def test_config_error_is_a_value_error(self):
        """Callers that predate the enum caught ValueError; ConfigError
        subclasses it, so they keep working."""
        with pytest.raises(ValueError):
            parse_executor("warp")
        with pytest.raises(ReproError):
            parse_executor("warp")

    def test_str_is_the_wire_name(self):
        assert str(Executor.VECTOR) == "vector"


class TestWiring:
    def test_session_validates_at_construction(self):
        from repro.compiler import CompilerSession

        with pytest.raises(ConfigError, match="valid executors"):
            CompilerSession(executor="warp")

    def test_execute_kernel_validates(self):
        import numpy as np

        from repro.gpu.vector_exec import execute_kernel
        from repro.ir import build_module
        from repro.lang import parse_program

        src = """
        kernel k(double a[n], int n) {
          #pragma acc kernels loop gang vector(64)
          for (i = 0; i < n; i++) { a[i] = i; }
        }
        """
        fn = build_module(parse_program(src)).functions[0]
        with pytest.raises(ConfigError, match="valid executors"):
            execute_kernel(fn, {"a": np.zeros(4), "n": 4}, executor="warp")

    def test_cli_exposes_all_names(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["compile", "-", "--executor", "codegen"])
        assert args.executor == "codegen"
        with pytest.raises(SystemExit):
            parser.parse_args(["compile", "-", "--executor", "warp"])
