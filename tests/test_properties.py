"""Property-based tests (hypothesis) on core data structures and the two
central invariants of the repo: scalar replacement never changes results,
and the vectorized execution engine is bit-for-bit the scalar interpreter.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis.subscripts import AffineForm, affine_of
from repro.codegen.vir import Instr, Op, VRegAllocator
from repro.gpu.interpreter import run_kernel
from repro.gpu.occupancy import compute_occupancy
from repro.gpu.registers import compute_live_intervals, max_pressure, ptxas_info
from repro.ir import BinOp, IntConst, UnOp, VarRef, build_module
from repro.ir.symbols import Symbol, SymbolKind
from repro.ir.types import I32
from repro.lang import parse_program

# ---------------------------------------------------------------------------
# AffineForm algebra
# ---------------------------------------------------------------------------

_SYMS = [Symbol(name=f"s{i}", stype=I32, kind=SymbolKind.LOOPVAR) for i in range(4)]


@st.composite
def affine_forms(draw, max_terms=4):
    form = AffineForm.constant(draw(st.integers(-50, 50)))
    for _ in range(draw(st.integers(0, max_terms))):
        sym = draw(st.sampled_from(_SYMS))
        coef = draw(st.integers(-10, 10))
        form = form + AffineForm.variable(sym, coef)
    return form


@st.composite
def int_exprs(draw, depth=0):
    """Random integer expressions over the shared symbols."""
    if depth >= 3 or draw(st.booleans()):
        if draw(st.booleans()):
            return IntConst(draw(st.integers(-20, 20)))
        return VarRef(draw(st.sampled_from(_SYMS)))
    op = draw(st.sampled_from(["+", "-", "*", "neg"]))
    if op == "neg":
        return UnOp("-", draw(int_exprs(depth + 1)))
    left = draw(int_exprs(depth + 1))
    right = draw(int_exprs(depth + 1))
    if op == "*" and not isinstance(left, IntConst) and not isinstance(right, IntConst):
        op = "+"  # keep degree manageable (still polynomial either way)
    return BinOp(op, left, right)


def eval_expr(e, env):
    if isinstance(e, IntConst):
        return e.value
    if isinstance(e, VarRef):
        return env[e.sym.name]
    if isinstance(e, UnOp):
        return -eval_expr(e.operand, env)
    if e.op == "+":
        return eval_expr(e.left, env) + eval_expr(e.right, env)
    if e.op == "-":
        return eval_expr(e.left, env) - eval_expr(e.right, env)
    return eval_expr(e.left, env) * eval_expr(e.right, env)


def eval_form(form, env):
    total = 0
    for mono, coef in form.terms:
        value = coef
        for s in mono:
            value *= env[s.name]
        total += value
    return total


class TestAffineFormProperties:
    @given(affine_forms(), affine_forms())
    def test_addition_commutes(self, a, b):
        assert a + b == b + a

    @given(affine_forms(), affine_forms(), affine_forms())
    def test_addition_associates(self, a, b, c):
        assert (a + b) + c == a + (b + c)

    @given(affine_forms())
    def test_subtraction_self_is_zero(self, a):
        assert (a - a).is_zero

    @given(affine_forms(), st.integers(-10, 10))
    def test_scale_distributes(self, a, k):
        assert a.scale(k) + a.scale(-k) == AffineForm()

    @given(affine_forms(), st.integers(-6, 6).filter(lambda k: k != 0))
    def test_int_multiple_roundtrip(self, a, k):
        scaled = a.scale(k)
        assert scaled.as_int_multiple_of(a) == (0 if a.is_zero else k)

    @given(int_exprs(), st.dictionaries(st.sampled_from([s.name for s in _SYMS]),
                                        st.integers(-5, 5),
                                        min_size=4, max_size=4))
    def test_affine_of_agrees_with_evaluation(self, expr, env):
        """Normalisation is semantics-preserving: evaluating the polynomial
        form equals evaluating the expression."""
        env = {s.name: env.get(s.name, 1) for s in _SYMS}
        form = affine_of(expr)
        if form is None:
            return  # non-polynomial constructs are out of scope
        assert eval_form(form, env) == eval_expr(expr, env)

    @given(int_exprs())
    def test_linear_coefficient_drop_identity(self, expr):
        form = affine_of(expr)
        if form is None:
            return
        s = _SYMS[0]
        lin = form.linear_coefficient(s)
        if lin is None:
            return
        # form == drop(s) + s * lin, checked by evaluation at several points.
        for val in (-2, 0, 3):
            env = {sym.name: 2 for sym in _SYMS}
            env[s.name] = val
            assert eval_form(form, env) == eval_form(form.drop(s), env) + val * eval_form(lin, env)


# ---------------------------------------------------------------------------
# Register allocator invariants
# ---------------------------------------------------------------------------


@st.composite
def instruction_streams(draw):
    """Random structured VIR streams with balanced loop markers."""
    ra = VRegAllocator()
    live: list = []
    instrs = []
    depth = 0
    for _ in range(draw(st.integers(3, 40))):
        choice = draw(st.integers(0, 9))
        if choice == 0 and depth < 2:
            instrs.append(Instr(Op.LOOP_BEGIN))
            depth += 1
        elif choice == 1 and depth > 0:
            instrs.append(Instr(Op.LOOP_END))
            depth -= 1
        else:
            srcs = tuple(
                draw(st.sampled_from(live)) for _ in range(draw(st.integers(0, min(2, len(live)))))
            ) if live else ()
            bits = draw(st.sampled_from([32, 64]))
            dst = ra.fresh(bits=bits)
            live.append(dst)
            instrs.append(Instr(Op.ADD, dst=dst, srcs=srcs))
    while depth > 0:
        instrs.append(Instr(Op.LOOP_END))
        depth -= 1
    instrs.append(Instr(Op.RET))
    return instrs


class TestAllocatorProperties:
    @given(instruction_streams())
    @settings(max_examples=50)
    def test_pressure_bounds(self, instrs):
        intervals = compute_live_intervals(instrs)
        pressure = max_pressure(intervals)
        total_units = sum(iv.vreg.units for iv in intervals)
        assert 0 <= pressure <= total_units

    @given(instruction_streams())
    @settings(max_examples=50)
    def test_intervals_cover_all_occurrences(self, instrs):
        intervals = {iv.vreg.id: iv for iv in compute_live_intervals(instrs)}
        for pos, ins in enumerate(instrs):
            for reg in (ins.dst, *ins.srcs):
                if reg is None:
                    continue
                iv = intervals[reg.id]
                assert iv.start <= pos <= iv.end

    @given(instruction_streams(), st.integers(8, 64))
    @settings(max_examples=50)
    def test_limit_always_respected(self, instrs, limit):
        from repro.codegen.vir import VirKernel

        info = ptxas_info(VirKernel(name="p", instrs=instrs), register_limit=limit)
        assert info.registers <= limit


# ---------------------------------------------------------------------------
# Occupancy monotonicity
# ---------------------------------------------------------------------------


class TestOccupancyProperties:
    @given(st.integers(1, 255), st.integers(32, 1024))
    def test_occupancy_within_bounds(self, regs, tpb):
        occ = compute_occupancy(regs, tpb)
        assert 0.0 <= occ.occupancy <= 1.0

    @given(st.integers(1, 254), st.integers(32, 1024))
    def test_more_registers_never_raise_occupancy(self, regs, tpb):
        a = compute_occupancy(regs, tpb)
        b = compute_occupancy(regs + 1, tpb)
        assert b.active_warps <= a.active_warps


# ---------------------------------------------------------------------------
# End-to-end: random stencil programs, SR equivalence
# ---------------------------------------------------------------------------


@st.composite
def stencil_programs(draw):
    """A random seq-loop kernel with reuse chains of varying offsets."""
    offsets = sorted(draw(st.sets(st.integers(-2, 2), min_size=2, max_size=4)))
    span = max(offsets) - min(offsets)
    terms = " + ".join(f"b[i + {o}]" if o >= 0 else f"b[i - {-o}]" for o in offsets)
    coef = draw(st.floats(0.25, 2.0, allow_nan=False))
    src = f"""
    kernel k(double a[n], const double b[n], int n) {{
      #pragma acc kernels loop gang vector(64)
      for (j = 0; j < 4; j++) {{
        #pragma acc loop seq
        for (i = 3; i < n - 3; i++) {{
          a[i] = ({terms}) * {coef!r};
        }}
      }}
    }}
    """
    return src, span


class TestScalarReplacementProperty:
    @given(stencil_programs(), st.integers(10, 24), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_safara_equivalence_on_random_stencils(self, program, n, seed):
        from repro.feedback import optimize_region

        src, span = program
        rng = np.random.default_rng(seed)
        b = rng.uniform(-1, 1, size=n)
        a1 = np.zeros(n)
        a2 = np.zeros(n)

        fn1 = build_module(parse_program(src)).functions[0]
        run_kernel(fn1, {"a": a1, "b": b.copy(), "n": n})

        fn2 = build_module(parse_program(src)).functions[0]
        report, _ = optimize_region(fn2.regions()[0], fn2.symtab)
        run_kernel(fn2, {"a": a2, "b": b.copy(), "n": n})

        np.testing.assert_array_equal(a1, a2)
        if span > 0:
            assert report.groups_replaced >= 1


# ---------------------------------------------------------------------------
# Reuse-group invariants
# ---------------------------------------------------------------------------


@st.composite
def reuse_loops(draw):
    """Random seq-loop bodies mixing chains, duplicates and invariants."""
    parts = []
    arrays = ["b", "c"]
    for _ in range(draw(st.integers(1, 4))):
        arr = draw(st.sampled_from(arrays))
        off = draw(st.integers(-2, 2))
        idx = f"i + {off}" if off >= 0 else f"i - {-off}"
        if draw(st.booleans()):
            idx = "0"  # invariant reference
        parts.append(f"{arr}[{idx}]")
    body = " + ".join(parts)
    return f"""
    kernel k(double a[n], const double b[n], const double c[n], int n) {{
      #pragma acc loop seq
      for (i = 3; i < n - 3; i++) {{
        a[i] = {body};
      }}
    }}
    """


class TestReuseGroupProperties:
    @given(reuse_loops())
    @settings(max_examples=60, deadline=None)
    def test_group_invariants(self, src):
        from repro.analysis import find_reuse_groups
        from repro.lang import parse_program as _pp

        fn = build_module(_pp(src)).functions[0]
        loop = fn.body[0]
        for g in find_reuse_groups(loop):
            # Lags normalised: generator at 0, span = max lag.
            assert min(g.lags) == 0
            assert g.span == max(g.lags)
            assert len(g.lags) == g.ref_count
            # Savings never exceed the reads in the group.
            reads = sum(1 for o in g.occurrences if not o.is_write)
            assert 0 <= g.loads_saved() <= reads
            # Temporaries: one per lag slot.
            assert g.temporaries_needed() == (g.span + 1 if g.kind.value == "inter" else 1)

    @given(reuse_loops(), st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_safara_never_increases_dynamic_loads(self, src, seed):
        from repro.feedback import optimize_region as _opt
        from repro.lang import parse_program as _pp

        n = 16
        rng = np.random.default_rng(seed)
        b = rng.uniform(size=n)
        c = rng.uniform(size=n)

        def run(transform):
            fn = build_module(_pp(src)).functions[0]
            if transform:
                # Wrap the loop in a fake region? Not needed: SAFARA works on
                # regions; use the loop-level machinery directly instead.
                from repro.analysis import find_reuse_groups
                from repro.transforms import can_replace, replace_group

                loop = fn.body[0]
                for g in list(find_reuse_groups(loop)):
                    if can_replace(g, allow_inter=True):
                        replace_group(fn.body, loop, g, fn.symtab)
            a = np.zeros(n)
            _, stats = run_kernel(fn, {"a": a, "b": b.copy(), "c": c.copy(), "n": n})
            return a, stats

        a_ref, s_ref = run(False)
        a_xf, s_xf = run(True)
        np.testing.assert_array_equal(a_ref, a_xf)
        assert s_xf.loads <= s_ref.loads


# ---------------------------------------------------------------------------
# Vectorized execution engine: scalar interpreter equivalence
# ---------------------------------------------------------------------------


@st.composite
def vectorizable_programs(draw):
    """Random parallel kernels from the planner's safe fragment: stencil
    reads at random offsets, optional lane-varying guards (mask semantics),
    optional inner sequential accumulation, C-truncating integer div/mod."""
    offsets = sorted(draw(st.sets(st.integers(-2, 2), min_size=1, max_size=3)))
    coefs = [draw(st.floats(0.25, 2.0, allow_nan=False)) for _ in offsets]
    terms = " + ".join(
        f"b[i + {o}] * {c!r}" if o >= 0 else f"b[i - {-o}] * {c!r}"
        for o, c in zip(offsets, coefs)
    )
    update = f"a[i] = {terms};"
    if draw(st.booleans()):  # lane-varying guard: both-sides mask semantics
        update = (
            f"if (b[i] > 1.0) {{ {update} }} "
            f"else {{ a[i] = b[i] * 0.125 - i; }}"
        )
    if draw(st.booleans()):  # inner sequential loop over a private scalar
        width = draw(st.integers(1, 3))
        update = f"""
          double acc = 0.0;
          #pragma acc loop seq
          for (k = 0; k < {width}; k++) {{ acc = acc + b[i + k] * 0.25; }}
          {update}
          a[i] = a[i] + acc;
        """
    divisor = draw(st.integers(2, 5))
    src = f"""
    kernel k(double a[n], const double b[n], int q[n], const int p[n], int n) {{
      #pragma acc kernels loop gang vector(64)
      for (i = 2; i < n - 3; i++) {{
        {update}
      }}
      #pragma acc kernels loop gang vector(64)
      for (i = 0; i < n; i++) {{
        q[i] = (p[i] * 7 - 11) / {divisor} + (p[i] * 5 - 7) % {divisor};
      }}
    }}
    """
    return src


@st.composite
def fallback_programs(draw):
    """Random kernels built around one construct the planner must reject."""
    kind = draw(st.sampled_from(["overlap", "carried", "escape"]))
    if kind == "overlap":
        body = "a[i] = a[i + 1] * 0.5 + b[i];"
        prefix, suffix = "", ""
    elif kind == "carried":
        prefix = "double s = 0.0;"
        body = "s = s * 0.5 + b[i]; a[i] = s;"
        suffix = ""
    else:
        prefix = "double s = 0.0;"
        body = "s = b[i] * 2.0; a[i] = s;"
        suffix = "a[0] = s;"
    return f"""
    kernel k(double a[n], const double b[n], int n) {{
      {prefix}
      #pragma acc kernels loop gang vector(64)
      for (i = 0; i < n - 1; i++) {{ {body} }}
      {suffix}
    }}
    """


class TestVectorExecutionProperty:
    def _run_both(self, src, n, seed, executor="auto"):
        from repro.gpu.vector_exec import execute_kernel

        rng = np.random.default_rng(seed)
        b = rng.uniform(0.5, 2.0, size=n)
        p = rng.integers(-3, 4, size=n).astype(np.int32)

        def args():
            return {
                "a": np.zeros(n),
                "b": b.copy(),
                "q": np.zeros(n, dtype=np.int32),
                "p": p.copy(),
                "n": n,
            }

        fn = build_module(parse_program(src)).functions[0]
        wanted = {prm.name for prm in fn.params}
        s_arrays, s_stats = run_kernel(
            fn, {k: v for k, v in args().items() if k in wanted}
        )
        fn2 = build_module(parse_program(src)).functions[0]
        v_arrays, v_stats, info = execute_kernel(
            fn2,
            {k: v for k, v in args().items() if k in wanted},
            executor=executor,
        )
        return s_arrays, s_stats, v_arrays, v_stats, info

    @given(vectorizable_programs(), st.integers(8, 24), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_vector_path_is_bit_identical(self, src, n, seed):
        s_arrays, s_stats, v_arrays, v_stats, info = self._run_both(src, n, seed)
        assert info.used == "codegen"
        for name in s_arrays:
            np.testing.assert_array_equal(s_arrays[name], v_arrays[name])
        assert s_stats == v_stats

    @given(vectorizable_programs(), st.integers(8, 24), st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_codegen_and_vector_engines_agree(self, src, n, seed):
        """Pinned ``codegen`` and pinned ``vector`` are the same machine:
        the generated program calls the interpreter's primitives in the
        interpreter's order, so arrays and stats match bit for bit."""
        _, _, c_arrays, c_stats, c_info = self._run_both(
            src, n, seed, executor="codegen"
        )
        _, _, v_arrays, v_stats, v_info = self._run_both(
            src, n, seed, executor="vector"
        )
        assert c_info.used == "codegen" and v_info.used == "vector"
        for name in v_arrays:
            np.testing.assert_array_equal(c_arrays[name], v_arrays[name])
        assert c_stats == v_stats

    @given(vectorizable_programs(), st.integers(8, 24), st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_generated_source_round_trips_through_text(self, src, n, seed):
        """generate → bind on a fresh parse → run matches the scalar
        oracle: the persisted-source warm path for arbitrary safe kernels."""
        from repro.codegen.numpy_source import bind_source, generate_source
        from repro.codegen.vector_lower import plan_kernel
        from repro.gpu.interpreter import bind_arguments
        from repro.gpu.vector_exec import VectorInterpreter

        rng = np.random.default_rng(seed)
        fn = build_module(parse_program(src)).functions[0]
        wanted = {prm.name for prm in fn.params}
        base = {
            "a": np.zeros(n),
            "b": rng.uniform(0.5, 2.0, size=n),
            "q": np.zeros(n, dtype=np.int32),
            "p": rng.integers(-3, 4, size=n).astype(np.int32),
            "n": n,
        }
        s_arrays, s_stats = run_kernel(
            fn, {k: (v.copy() if hasattr(v, "copy") else v)
                 for k, v in base.items() if k in wanted}
        )
        source = generate_source(build_module(parse_program(src)).functions[0])
        fn2 = build_module(parse_program(src)).functions[0]
        gk = bind_source(fn2, source)
        scalars, arrays, lowers = bind_arguments(
            fn2, {k: v for k, v in base.items() if k in wanted}
        )
        interp = VectorInterpreter(fn2, plan_kernel(fn2), scalars, arrays, lowers)
        gk.run(interp)
        for name in s_arrays:
            np.testing.assert_array_equal(s_arrays[name], arrays[name])
        assert interp.stats == s_stats

    @given(fallback_programs(), st.integers(8, 24), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_fallback_reports_reason_and_matches_scalar(self, src, n, seed):
        s_arrays, s_stats, v_arrays, v_stats, info = self._run_both(src, n, seed)
        assert info.used == "scalar"
        assert info.fallback_reason
        for name in s_arrays:
            np.testing.assert_array_equal(s_arrays[name], v_arrays[name])
        assert s_stats == v_stats
