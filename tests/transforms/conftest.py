"""Shared fixtures for transformation tests."""

import numpy as np
import pytest

from repro.gpu.interpreter import numpy_dtype, run_kernel
from repro.ir import build_module
from repro.lang import parse_program


def make_args(fn, scalars, seed=0):
    """Random concrete arguments for a kernel function.

    ``scalars`` supplies every scalar parameter's value; array shapes are
    derived from the declared dims evaluated against those scalars.
    """
    rng = np.random.default_rng(seed)
    args = dict(scalars)
    for param in fn.params:
        if param.array is None:
            continue
        if param.array.is_pointer:
            size = scalars.get(f"__len_{param.name}")
            if size is None:
                raise AssertionError(
                    f"pointer param {param.name} needs __len_{param.name} in scalars"
                )
            shape = (size,)
        else:
            shape = tuple(
                d.extent if isinstance(d.extent, int) else int(scalars[d.extent.name])
                for d in param.array.dims
            )
        dtype = numpy_dtype(param)
        if np.issubdtype(dtype, np.floating):
            data = rng.uniform(0.5, 2.0, size=shape).astype(dtype)
        else:
            data = rng.integers(0, 10, size=shape).astype(dtype)
        args[param.name] = data
    return {k: v for k, v in args.items() if not k.startswith("__len_")}


@pytest.fixture
def equivalence():
    """Assert a transformation preserves semantics on concrete inputs.

    Usage::

        equivalence(src, scalars, transform)  # transform(fn) mutates IR
    """

    def _check(src, scalars, transform, seed=0):
        fn_orig = build_module(parse_program(src)).functions[0]
        fn_xform = build_module(parse_program(src)).functions[0]
        transform(fn_xform)

        args_a = make_args(fn_orig, scalars, seed=seed)
        args_b = {
            k: (v.copy() if isinstance(v, np.ndarray) else v) for k, v in args_a.items()
        }
        arrays_a, stats_a = run_kernel(fn_orig, args_a)
        arrays_b, stats_b = run_kernel(fn_xform, args_b)
        for name, arr in arrays_a.items():
            np.testing.assert_array_equal(
                arr, arrays_b[name], err_msg=f"array {name!r} diverged"
            )
        return stats_a, stats_b, fn_xform

    return _check


@pytest.fixture
def lower():
    def _lower(src, name=None):
        mod = build_module(parse_program(src))
        return mod.functions[0] if name is None else mod.function(name)

    return _lower
