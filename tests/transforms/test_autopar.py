"""Tests for kernels-construct auto-parallelisation."""

import numpy as np

from repro.analysis import analyze_loops
from repro.compiler import BASE, compile_function, compile_source
from repro.ir import Loop, build_module
from repro.gpu.interpreter import run_kernel
from repro.lang import parse_program
from repro.transforms import auto_parallelize

UNDIRECTED_SRC = """
kernel k(double a[n][m], const double b[n][m], int n, int m) {
  #pragma acc kernels
  {
    for (i = 0; i < n; i++) {
      for (j = 0; j < m; j++) {
        a[i][j] = 2.0 * b[i][j];
      }
    }
  }
}
"""


def lower(src):
    return build_module(parse_program(src)).functions[0]


class TestMapping:
    def test_two_level_nest_gets_gang_and_vector(self):
        fn = lower(UNDIRECTED_SRC)
        region = fn.regions()[0]
        report = auto_parallelize(region)
        info = analyze_loops(region)
        outer, inner = info.loops
        assert outer.is_parallel and outer.directive.gang is True
        assert inner.is_parallel and inner.directive.vector == 128
        assert report.parallelized == 2

    def test_single_loop_gets_gang_vector(self):
        src = """
        kernel k(double a[n], int n) {
          #pragma acc kernels
          {
            for (i = 0; i < n; i++) { a[i] = 1.0; }
          }
        }
        """
        fn = lower(src)
        region = fn.regions()[0]
        auto_parallelize(region)
        (loop,) = analyze_loops(region).loops
        assert loop.directive.gang is True
        assert loop.directive.vector == 128

    def test_recurrence_stays_sequential(self):
        src = """
        kernel k(double a[n][m], int n, int m) {
          #pragma acc kernels
          {
            for (i = 0; i < n; i++) {
              for (j = 1; j < m; j++) {
                a[i][j] = a[i][j-1] * 0.5;
              }
            }
          }
        }
        """
        fn = lower(src)
        region = fn.regions()[0]
        report = auto_parallelize(region)
        info = analyze_loops(region)
        outer, inner = info.loops
        assert outer.is_parallel  # rows are independent
        assert not inner.is_parallel  # j-recurrence
        assert inner in report.kept_sequential

    def test_indirect_store_stays_sequential(self):
        src = """
        kernel k(double a[n], const int idx[n], int n) {
          #pragma acc kernels
          {
            for (i = 0; i < n; i++) {
              a[idx[i]] = 1.0;
            }
          }
        }
        """
        fn = lower(src)
        region = fn.regions()[0]
        report = auto_parallelize(region)
        (loop,) = analyze_loops(region).loops
        assert not loop.is_parallel
        assert loop in report.kept_sequential

    def test_user_directives_respected(self):
        src = """
        kernel k(double a[n][m], int n, int m) {
          #pragma acc kernels
          {
            #pragma acc loop seq
            for (i = 0; i < n; i++) {
              for (j = 0; j < m; j++) {
                a[i][j] = 1.0;
              }
            }
          }
        }
        """
        fn = lower(src)
        region = fn.regions()[0]
        report = auto_parallelize(region)
        info = analyze_loops(region)
        outer, inner = info.loops
        assert not outer.is_parallel  # explicit seq wins
        assert inner.directive is None  # subtree left alone
        assert report.parallelized == 0

    def test_parallel_construct_untouched(self):
        src = UNDIRECTED_SRC.replace("acc kernels", "acc parallel")
        fn = lower(src)
        region = fn.regions()[0]
        report = auto_parallelize(region)
        assert report.parallelized == 0

    def test_third_level_stays_per_thread(self):
        src = """
        kernel k(double a[n][m][8], int n, int m) {
          #pragma acc kernels
          {
            for (i = 0; i < n; i++) {
              for (j = 0; j < m; j++) {
                for (t = 0; t < 8; t++) {
                  a[i][j][t] = 1.0;
                }
              }
            }
          }
        }
        """
        fn = lower(src)
        region = fn.regions()[0]
        auto_parallelize(region)
        info = analyze_loops(region)
        t = info.loops[2]
        assert not t.is_parallel


class TestEndToEnd:
    def test_driver_parallelizes_and_launches_wide(self):
        prog = compile_source(UNDIRECTED_SRC, BASE)
        kernel = prog.kernels[0]
        assert kernel.autopar is not None
        assert kernel.autopar.parallelized == 2
        assert kernel.vir.launch.total_threads({"n": 64, "m": 256}) == 64 * 256

    def test_semantics_preserved(self):
        n, m = 6, 10
        b = np.random.default_rng(0).uniform(size=(n, m))
        a1, a2 = np.zeros((n, m)), np.zeros((n, m))

        fn1 = lower(UNDIRECTED_SRC)
        run_kernel(fn1, {"a": a1, "b": b.copy(), "n": n, "m": m})
        fn2 = lower(UNDIRECTED_SRC)
        compile_function(fn2, BASE)
        run_kernel(fn2, {"a": a2, "b": b.copy(), "n": n, "m": m})
        np.testing.assert_array_equal(a1, a2)
