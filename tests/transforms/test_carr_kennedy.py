"""Behavioural tests for the Carr-Kennedy baseline, including the
sequentialisation hazard SAFARA exists to avoid."""

import numpy as np

from repro.ir import build_module
from repro.lang import parse_program
from repro.transforms import apply_carr_kennedy

PARALLEL_REUSE_SRC = """
kernel fig3(double a[sz], const double b[sz], int SIZE, int sz) {
  #pragma acc kernels loop gang vector(128)
  for (i = 1; i <= SIZE; i++) {
    a[i] = (b[i] + b[i+1]) / 2;
  }
}
"""

SEQ_REUSE_SRC = """
kernel k(double a[n], const double b[n], int n) {
  #pragma acc kernels loop gang vector(64)
  for (j = 0; j < n; j++) {
    #pragma acc loop seq
    for (i = 1; i < n - 1; i++) {
      a[i] = b[i-1] + b[i] + b[i+1];
    }
  }
}
"""


def lower(src):
    return build_module(parse_program(src)).functions[0]


class TestSequentialisationHazard:
    def test_parallel_loop_gets_sequentialized(self):
        """The defining flaw (Figures 3–4): C-K rotates registers across a
        parallel loop and kills its parallelism."""
        fn = lower(PARALLEL_REUSE_SRC)
        region = fn.regions()[0]
        loop = region.body[0]
        assert loop.is_parallel
        report = apply_carr_kennedy(region, fn.symtab)
        assert report.sequentialized_loops == [loop]
        assert loop.sequentialized
        assert not loop.is_parallel

    def test_intra_only_mode_preserves_parallelism(self):
        fn = lower(PARALLEL_REUSE_SRC)
        region = fn.regions()[0]
        report = apply_carr_kennedy(region, fn.symtab, intra_only=True)
        assert not report.sequentialized_loops
        assert region.body[0].is_parallel

    def test_semantics_still_correct_after_sequentialization(self, equivalence):
        # C-K output is *slow* on a GPU but not wrong.
        def xform(fn):
            apply_carr_kennedy(fn.regions()[0], fn.symtab)

        equivalence(PARALLEL_REUSE_SRC, {"SIZE": 30, "sz": 32}, xform)


class TestModeration:
    def test_budget_limits_replacements(self):
        fn = lower(SEQ_REUSE_SRC)
        region = fn.regions()[0]
        report = apply_carr_kennedy(region, fn.symtab, register_budget=2)
        assert report.groups_replaced == 0  # needs 3 doubles = 6 units

    def test_budget_spent_recorded(self):
        fn = lower(SEQ_REUSE_SRC)
        region = fn.regions()[0]
        report = apply_carr_kennedy(region, fn.symtab, register_budget=32)
        assert report.groups_replaced >= 1
        assert report.registers_spent > 0

    def test_seq_loop_replacement_saves_loads(self, equivalence):
        def xform(fn):
            apply_carr_kennedy(fn.regions()[0], fn.symtab)

        stats_orig, stats_xform, _ = equivalence(SEQ_REUSE_SRC, {"n": 12}, xform)
        assert stats_xform.loads < stats_orig.loads

    def test_count_priority_ordering(self):
        """With a budget for one group only, C-K picks the *most referenced*
        group — not the highest-latency one (the paper's limitation 2)."""
        src = """
        kernel k(double out[n][64], const double big[n][64], const double sml[n][64], int n) {
          #pragma acc kernels loop gang vector(64)
          for (j = 0; j < n; j++) {
            #pragma acc loop seq
            for (i = 1; i < 63; i++) {
              out[j][i] = big[j][i-1] + big[j][i] + big[j][i+1] + sml[j][i] + sml[j][i+1];
            }
          }
        }
        """
        fn = lower(src)
        region = fn.regions()[0]
        report = apply_carr_kennedy(region, fn.symtab, register_budget=6)
        assert report.groups_replaced == 1
        assert report.replacements[0].group.array.name == "big"  # 3 refs > 2
