"""Tests for the dim/small clause semantics (paper Section IV)."""

import pytest

from repro.ir import build_module
from repro.lang import parse_program
from repro.lang.errors import SemanticError
from repro.transforms import compute_dope_classes, offset_bits, small_arrays


def lower(src):
    return build_module(parse_program(src)).functions[0]


def region_and_symtab(src):
    fn = lower(src)
    return fn.regions()[0], fn.symtab


VLA_SRC = """
kernel k(const double u[1:nz][1:ny][1:nx], const double v[1:nz][1:ny][1:nx],
         const double w[1:mz][1:my][1:mx], double out[1:nz][1:ny][1:nx],
         int nx, int ny, int nz, int mx, int my, int mz) {
  #pragma acc kernels loop gang vector(64) %s
  for (i = 1; i < nx; i++) {
    out[1][1][i] = u[1][1][i] + v[1][1][i] + w[1][1][i];
  }
}
"""


class TestDopeClasses:
    def test_clause_groups_arrays(self):
        region, symtab = region_and_symtab(
            VLA_SRC % "dim((1:nz,1:ny,1:nx)(u, v, out))"
        )
        classes = compute_dope_classes(region, symtab)
        u, v, out, w = (symtab.require(n) for n in ("u", "v", "out", "w"))
        assert classes.share(u, v)
        assert classes.share(u, out)
        assert not classes.share(u, w)
        assert classes.representative(v) is u

    def test_no_clause_no_sharing_for_vlas(self):
        """The central premise of Section IV-A: without the clause the
        compiler may NOT assume same-bound VLAs share dimensions — the
        bounds live in per-array run-time dope vectors."""
        region, symtab = region_and_symtab(VLA_SRC % "")
        classes = compute_dope_classes(region, symtab)
        u, v = symtab.require("u"), symtab.require("v")
        assert not classes.share(u, v)

    def test_static_arrays_auto_unioned(self):
        src = """
        kernel k(const double a[64][32], const double b[64][32], double c[64][32], int n) {
          #pragma acc kernels loop gang vector(32)
          for (i = 0; i < n; i++) { c[1][i] = a[1][i] + b[1][i]; }
        }
        """
        region, symtab = region_and_symtab(src)
        classes = compute_dope_classes(region, symtab)
        a, b = symtab.require("a"), symtab.require("b")
        assert classes.share(a, b)

    def test_static_shape_mismatch_not_unioned(self):
        src = """
        kernel k(const double a[64][32], const double b[64][16], double c[64][32], int n) {
          #pragma acc kernels loop gang vector(32)
          for (i = 0; i < n; i++) { c[1][i] = a[1][i] + b[1][i]; }
        }
        """
        region, symtab = region_and_symtab(src)
        classes = compute_dope_classes(region, symtab)
        assert not classes.share(symtab.require("a"), symtab.require("b"))

    def test_rank_mismatch_rejected(self):
        src = """
        kernel k(const double a[1:n][1:m], const double b[1:n], double c[1:n], int n, int m) {
          #pragma acc kernels loop gang vector(32) dim((a, b))
          for (i = 1; i < n; i++) { c[i] = a[i][1] + b[i]; }
        }
        """
        with pytest.raises(SemanticError, match="rank"):
            region_and_symtab(src)

    def test_static_extent_contradiction_rejected(self):
        src = """
        kernel k(const double a[64][32], double c[64][32], int n) {
          #pragma acc kernels loop gang vector(32) dim([64][16](a))
          for (i = 0; i < n; i++) { c[1][i] = a[1][i]; }
        }
        """
        region, symtab = region_and_symtab(src)
        with pytest.raises(SemanticError, match="extent"):
            compute_dope_classes(region, symtab)

    def test_representative_is_first_member(self):
        region, symtab = region_and_symtab(
            VLA_SRC % "dim((1:nz,1:ny,1:nx)(v, u, out))"
        )
        classes = compute_dope_classes(region, symtab)
        assert classes.representative(symtab.require("out")) is symtab.require("v")


class TestSmallArrays:
    def test_clause_marks_arrays(self):
        region, symtab = region_and_symtab(VLA_SRC % "small(u, v)")
        small = small_arrays(region, symtab)
        assert symtab.require("u") in small
        assert symtab.require("v") in small
        assert symtab.require("w") not in small

    def test_offset_bits(self):
        region, symtab = region_and_symtab(VLA_SRC % "small(u)")
        small = small_arrays(region, symtab)
        assert offset_bits(symtab.require("u"), small) == 32
        assert offset_bits(symtab.require("w"), small) == 64

    def test_static_arrays_auto_small(self):
        src = """
        kernel k(const double a[64][32], double c[64][32], int n) {
          #pragma acc kernels loop gang vector(32)
          for (i = 0; i < n; i++) { c[1][i] = a[1][i]; }
        }
        """
        region, symtab = region_and_symtab(src)
        small = small_arrays(region, symtab)
        assert symtab.require("a") in small

    def test_huge_static_array_not_small(self):
        # 1024^3 doubles = 8 GB > the 4 GB threshold.
        src = """
        kernel k(const double a[1024][1024][1024], double c[8], int n) {
          #pragma acc kernels loop gang vector(32)
          for (i = 0; i < n; i++) { c[i] = a[i][0][0]; }
        }
        """
        region, symtab = region_and_symtab(src)
        small = small_arrays(region, symtab)
        assert symtab.require("a") not in small
        assert symtab.require("c") in small

    def test_unknown_name_rejected_at_lowering(self):
        src = """
        kernel k(const double a[1:n], double c[1:n], int n) {
          #pragma acc kernels loop gang vector(32) small(zzz)
          for (i = 1; i < n; i++) { c[i] = a[i]; }
        }
        """
        with pytest.raises(SemanticError, match="small"):
            lower(src)
