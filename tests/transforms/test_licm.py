"""Tests for baseline loop-invariant load motion (LICM)."""

import numpy as np

from repro.ir import Loop, build_module, format_function
from repro.gpu.interpreter import run_kernel
from repro.lang import parse_program
from repro.transforms import apply_licm

SRC = """
kernel k(double a[n][m], const double c[m], const double d[4], int n, int m) {
  #pragma acc kernels loop gang vector(64)
  for (i = 0; i < n; i++) {
    #pragma acc loop seq
    for (j = 0; j < m; j++) {
      a[i][j] = a[i][j] * d[0] + c[j] + d[1];
    }
  }
}
"""


def lower(src):
    return build_module(parse_program(src)).functions[0]


class TestLicm:
    def test_invariant_loads_hoisted(self):
        fn = lower(SRC)
        report = apply_licm(fn.regions()[0], fn.symtab)
        # d[0] and d[1] are invariant wrt j; c[j] is not.
        assert report.loads_hoisted == 2
        text = format_function(fn)
        assert "d_inv" in text

    def test_hoisted_out_of_seq_loop_only(self):
        fn = lower(SRC)
        apply_licm(fn.regions()[0], fn.symtab)
        region = fn.regions()[0]
        outer = next(s for s in region.body if isinstance(s, Loop))
        # The hoisted decls live in the outer (parallel) loop body, before
        # the inner seq loop.
        decls = [s for s in outer.body if hasattr(s, "sym")]
        assert len(decls) == 2

    def test_varying_reference_not_hoisted(self):
        fn = lower(SRC)
        apply_licm(fn.regions()[0], fn.symtab)
        text = format_function(fn)
        assert "c[j]" in text  # still loaded per iteration

    def test_written_invariant_not_hoisted(self):
        src = """
        kernel k(double a[n], double acc[1], int n) {
          #pragma acc kernels
          {
            #pragma acc loop seq
            for (i = 0; i < n; i++) {
              acc[0] = acc[0] + a[i];
            }
          }
        }
        """
        fn = lower(src)
        report = apply_licm(fn.regions()[0], fn.symtab)
        assert report.loads_hoisted == 0

    def test_multilevel_hoisting(self):
        """An invariant wrt both loops bubbles all the way out."""
        src = """
        kernel k(double a[n][m], const double d[4], int n, int m) {
          #pragma acc kernels
          {
            #pragma acc loop seq
            for (i = 0; i < n; i++) {
              #pragma acc loop seq
              for (j = 0; j < m; j++) {
                a[i][j] = d[2];
              }
            }
          }
        }
        """
        fn = lower(src)
        apply_licm(fn.regions()[0], fn.symtab)
        region = fn.regions()[0]
        # The load sits at region level, above the i loop.
        first = region.body[0]
        assert hasattr(first, "sym")
        assert first.sym.name.startswith("d_inv")

    def test_semantics_preserved(self):
        rng = np.random.default_rng(3)
        n, m = 6, 5
        a1 = rng.uniform(size=(n, m))
        a2 = a1.copy()
        c = rng.uniform(size=m)
        d = rng.uniform(size=4)

        fn1 = lower(SRC)
        run_kernel(fn1, {"a": a1, "c": c.copy(), "d": d.copy(), "n": n, "m": m})
        fn2 = lower(SRC)
        apply_licm(fn2.regions()[0], fn2.symtab)
        run_kernel(fn2, {"a": a2, "c": c.copy(), "d": d.copy(), "n": n, "m": m})
        np.testing.assert_array_equal(a1, a2)

    def test_dynamic_loads_reduced(self):
        n, m = 4, 8
        args = lambda: {
            "a": np.ones((n, m)),
            "c": np.ones(m),
            "d": np.ones(4),
            "n": n,
            "m": m,
        }
        fn1 = lower(SRC)
        _, s1 = run_kernel(fn1, args())
        fn2 = lower(SRC)
        apply_licm(fn2.regions()[0], fn2.symtab)
        _, s2 = run_kernel(fn2, args())
        # d[0], d[1] loaded once per i instead of once per (i, j).
        assert s2.loads == s1.loads - 2 * n * (m - 1)
