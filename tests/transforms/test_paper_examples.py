"""The paper's worked examples (Figures 3–6) as executable tests.

Each test applies the transformation the paper illustrates and checks both
the *structure* of the result (matching the paper's after-listing) and its
*semantics* (bit-identical results in the interpreter).
"""

import numpy as np

from repro.analysis import GroupKind, analyze_loops, find_reuse_groups
from repro.ir import Assign, LocalDecl, Loop, format_function, format_stmts
from repro.transforms import replace_group
from repro.transforms.carr_kennedy import _parent_stmts

FIG3_SRC = """
kernel fig3(double a[sz], const double b[sz], int SIZE, int sz) {
  #pragma acc loop seq
  for (i = 1; i <= SIZE; i++) {
    a[i] = (b[i] + b[i+1]) / 2;
  }
}
"""

FIG5_SRC = """
kernel fig5(double a[isz2][jsz2], const double b[jsz2][isz2],
            double c[jsz2], double d[jsz2],
            int ISIZE, int JSIZE, int isz2, int jsz2) {
  #pragma acc kernels loop gang vector(64)
  for (j = 1; j <= JSIZE; j++) {
    c[j] = b[j][0] + b[j][1];
    d[j] = c[j] * b[j][0];
    #pragma acc loop seq
    for (i = 1; i <= ISIZE; i++) {
      a[i][j] += a[i-1][j] + b[j][i-1] + a[i+1][j] + b[j][i+1];
    }
  }
}
"""


def _replace_b(fn):
    """Apply inter-iteration SR to array b of the kernel's seq loop."""
    if fn.regions():
        region = fn.regions()[0]
        info = analyze_loops(region)
        loop = next(l for l in info.loops if not l.is_parallel)
        parent = _parent_stmts(region, loop)
    else:
        loop = fn.body[0]
        parent = fn.body
    (group,) = [g for g in find_reuse_groups(loop) if g.array.name == "b"]
    replace_group(parent, loop, group, fn.symtab)
    return loop


class TestFigure3To4:
    """Classic Carr-Kennedy on Fig. 3's loop produces Fig. 4's rotating
    registers: one array reference left in the body."""

    def test_structure(self, lower):
        fn = lower(FIG3_SRC)
        loop = _replace_b(fn)
        text = format_function(fn)
        # Preheader preload of b[1] (paper: b1=b[1]).
        assert "= b[1];" in text
        # Exactly one load of b left inside the loop (the leading b[i+1]).
        body_text = format_stmts(loop.body)
        assert body_text.count("b[") == 1
        assert "b[i + 1]" in body_text

    def test_rotation_at_loop_bottom(self, lower):
        fn = lower(FIG3_SRC)
        loop = _replace_b(fn)
        last = loop.body[-1]
        assert isinstance(last, Assign)
        # Rotation: t1 = t0 (both scalars).
        assert not isinstance(last.target, type(loop.body[0]))

    def test_semantics(self, equivalence):
        stats_orig, stats_xform, _ = equivalence(
            FIG3_SRC, {"SIZE": 63, "sz": 65}, _replace_b
        )
        # The transformation halves the b loads (2 per iter -> 1 + preload).
        assert stats_xform.loads < stats_orig.loads

    def test_creates_loop_carried_dependence(self, lower):
        """After C-K, the loop reads temps written in the previous
        iteration — the hazard of Section III-A.1 (the loop body now has a
        scalar recurrence through the rotation)."""
        fn = lower(FIG3_SRC)
        loop = _replace_b(fn)
        # The rotation statement writes a scalar read earlier in the body.
        rotated = loop.body[-1].target.sym
        reads_before = format_stmts(loop.body[:-1])
        assert rotated.name in reads_before


class TestFigure5To6:
    def test_structure_matches_figure6(self, lower):
        fn = lower(FIG5_SRC)
        loop = _replace_b(fn)
        text = format_function(fn)
        # Preheader: b0 = b[j][0]; b1 = b[j][1] (paper Fig. 6).
        assert "= b[j][0];" in text
        assert "= b[j][1];" in text
        body_text = format_stmts(loop.body)
        # One leading load b[j][i+1] per iteration; a-refs untouched.
        assert body_text.count("b[") == 1
        assert "b[j][i + 1]" in body_text
        assert "a[i - 1][j]" in body_text
        assert "a[i + 1][j]" in body_text

    def test_three_temporaries(self, lower):
        fn = lower(FIG5_SRC)
        before = {s.name for s in fn.symtab}
        fn2 = lower(FIG5_SRC)
        _replace_b(fn2)
        after = {s.name for s in fn2.symtab}
        assert len(after - before) == 3  # b0, b1, b2 of Fig. 6

    def test_semantics(self, equivalence):
        stats_orig, stats_xform, _ = equivalence(
            FIG5_SRC,
            {"ISIZE": 14, "JSIZE": 11, "isz2": 16, "jsz2": 13},
            _replace_b,
        )
        assert stats_xform.loads < stats_orig.loads

    def test_note_paper_figure6_typo(self, lower):
        """The paper's Fig. 6 drops the b0 (b[j][i-1]) term from the sum —
        an apparent typo, since Fig. 5 includes it and the prose says only
        b is replaced.  We implement the semantics-preserving version and
        document the divergence here."""
        fn = lower(FIG5_SRC)
        loop = _replace_b(fn)
        body_text = format_stmts(loop.body)
        # Our output *keeps* the lag-2 temporary in the sum.
        lag2 = [s for s in fn.symtab if s.name.startswith("b_r2")]
        assert len(lag2) == 1
        assert body_text.count(lag2[0].name) >= 2  # used in sum + rotation
