"""Behavioural tests for SAFARA (paper Section III-B)."""

import numpy as np
import pytest

from repro.analysis import GroupKind
from repro.feedback import FeedbackCompiler, optimize_region
from repro.gpu.arch import FERMI_LIKE, KEPLER_K20XM
from repro.ir import build_module, format_function
from repro.lang import parse_program
from repro.transforms import apply_safara, collect_candidates

SEISMIC_SRC = """
kernel seismic(const double vz_1[1:nz][1:ny][1:nx], const double vz_2[1:nz][1:ny][1:nx],
               const double vz_3[1:nz][1:ny][1:nx], double out[1:nz][1:ny][1:nx],
               double h, int nx, int ny, int nz) {
  #pragma acc kernels loop gang vector(2)
  for (j = 2; j < ny; j++) {
    #pragma acc loop gang vector(64)
    for (i = 1; i < nx; i++) {
      #pragma acc loop seq
      for (k = 2; k < nz; k++) {
        out[k][j][i] = (vz_1[k][j][i] - vz_1[k-1][j][i]) / h
                     + (vz_2[k][j][i] - vz_2[k-1][j][i]) / h
                     + (vz_3[k][j][i] - vz_3[k-1][j][i]) / h;
      }
    }
  }
}
"""

PARALLEL_REUSE_SRC = """
kernel fig3(double a[sz], const double b[sz], int SIZE, int sz) {
  #pragma acc kernels loop gang vector(128)
  for (i = 1; i <= SIZE; i++) {
    a[i] = (b[i] + b[i+1]) / 2;
  }
}
"""


def lower(src):
    return build_module(parse_program(src)).functions[0]


class TestParallelGuard:
    """Limitation 1 of Carr-Kennedy: SAFARA must never sequentialise a
    parallel loop (Figures 3–4)."""

    def test_inter_group_on_parallel_loop_not_candidate(self):
        fn = lower(PARALLEL_REUSE_SRC)
        region = fn.regions()[0]
        cands = collect_candidates(region)
        assert cands == []

    def test_loop_stays_parallel_after_safara(self):
        fn = lower(PARALLEL_REUSE_SRC)
        region = fn.regions()[0]
        report, _ = optimize_region(region, fn.symtab)
        loop = region.body[0]
        assert loop.is_parallel
        assert not loop.sequentialized
        assert report.groups_replaced == 0

    def test_seq_loop_inter_groups_are_candidates(self):
        fn = lower(SEISMIC_SRC)
        cands = collect_candidates(fn.regions()[0])
        kinds = {c.group.kind for c in cands}
        assert GroupKind.INTER in kinds
        assert len(cands) == 3  # the three vz chains

    def test_intra_groups_allowed_on_parallel_loops(self):
        src = """
        kernel k(double a[n], const double b[n][8], int n) {
          #pragma acc kernels loop gang vector(64)
          for (i = 0; i < n; i++) {
            a[i] = b[i][0] * b[i][0] + b[i][0];
          }
        }
        """
        fn = lower(src)
        cands = collect_candidates(fn.regions()[0])
        assert len(cands) == 1
        assert cands[0].group.kind is GroupKind.INTRA


class TestFeedbackLoop:
    def test_feedback_invoked_each_iteration(self):
        fn = lower(SEISMIC_SRC)
        region = fn.regions()[0]
        report, feedback = optimize_region(region, fn.symtab)
        # At least: initial compile + post-replacement convergence check.
        assert feedback.compilations >= 2
        assert feedback.compilations == len(feedback.history)

    def test_register_budget_respected(self):
        fn = lower(SEISMIC_SRC)
        region = fn.regions()[0]
        report, feedback = optimize_region(region, fn.symtab, register_limit=64)
        assert report.final_registers <= 64

    def test_tight_limit_blocks_replacement(self):
        fn = lower(SEISMIC_SRC)
        region = fn.regions()[0]
        feedback = FeedbackCompiler(symtab=fn.symtab)
        first = feedback(region).registers
        fn2 = lower(SEISMIC_SRC)
        region2 = fn2.regions()[0]
        report, _ = optimize_region(region2, fn2.symtab, register_limit=first)
        # available = 0 -> nothing replaced.
        assert report.groups_replaced == 0

    def test_replacements_recorded_per_iteration(self):
        fn = lower(SEISMIC_SRC)
        region = fn.regions()[0]
        report, _ = optimize_region(region, fn.symtab)
        assert report.groups_replaced == 3
        assert report.iterations
        assert all(it.applied for it in report.iterations)

    def test_registers_grow_after_replacement(self):
        fn = lower(SEISMIC_SRC)
        region = fn.regions()[0]
        report, feedback = optimize_region(region, fn.symtab)
        assert feedback.history[-1].registers >= feedback.history[0].registers

    def test_partial_budget_replaces_highest_cost_first(self):
        fn = lower(SEISMIC_SRC)
        region = fn.regions()[0]
        feedback = FeedbackCompiler(symtab=fn.symtab)
        base = feedback(region).registers
        fn2 = lower(SEISMIC_SRC)
        region2 = fn2.regions()[0]
        # Room for exactly one double-width rotating pair (2 temps x 2).
        report, _ = optimize_region(region2, fn2.symtab, register_limit=base + 4)
        assert report.groups_replaced == 1

    def test_max_iterations_terminates(self):
        fn = lower(SEISMIC_SRC)
        region = fn.regions()[0]
        feedback = FeedbackCompiler(symtab=fn.symtab)
        report = apply_safara(region, fn.symtab, feedback, max_iterations=1)
        assert len(report.iterations) <= 1


class TestSemanticsPreserved:
    def test_safara_preserves_results(self, equivalence):
        def xform(fn):
            region = fn.regions()[0]
            optimize_region(region, fn.symtab)

        stats_orig, stats_xform, fn = equivalence(
            SEISMIC_SRC,
            {"nx": 9, "ny": 7, "nz": 6, "h": 0.5},
            xform,
        )
        assert stats_xform.loads < stats_orig.loads

    def test_readonly_cache_toggle_changes_costs_not_results(self, equivalence):
        def xform(fn):
            region = fn.regions()[0]
            optimize_region(region, fn.symtab, arch=FERMI_LIKE)

        equivalence(SEISMIC_SRC, {"nx": 9, "ny": 7, "nz": 6, "h": 0.5}, xform)


class TestConvergedReason:
    def test_reasons(self):
        fn = lower(SEISMIC_SRC)
        region = fn.regions()[0]
        report, _ = optimize_region(region, fn.symtab)
        assert report.converged_reason in (
            "registers-saturated",
            "candidates-exhausted",
            "no-candidates",
        )
