"""Tests for loop unrolling (the paper's future-work combination)."""

import numpy as np
import pytest

from repro.ir import Loop, build_module, format_function
from repro.gpu.interpreter import run_kernel
from repro.lang import parse_program
from repro.transforms import UnrollError, apply_unrolling, can_unroll, unroll_loop

CHAIN_SRC = """
kernel k(double a[n], const double b[n], int n) {
  #pragma acc kernels loop gang vector(32)
  for (j = 0; j < 2; j++) {
    #pragma acc loop seq
    for (i = 1; i < n - 1; i++) {
      double t = b[i] + b[i+1];
      a[i] = a[i] + t * (j + 1);
    }
  }
}
"""


def lower(src):
    return build_module(parse_program(src)).functions[0]


class TestMechanics:
    def test_main_loop_step_becomes_factor(self):
        fn = lower(CHAIN_SRC)
        region = fn.regions()[0]
        report = apply_unrolling(region, fn.symtab, factor=4)
        assert len(report.unrolled) == 1
        main = report.unrolled[0]
        assert main.step == 4

    def test_remainder_loop_inserted(self):
        fn = lower(CHAIN_SRC)
        region = fn.regions()[0]
        apply_unrolling(region, fn.symtab, factor=4)
        outer = next(s for s in region.body if isinstance(s, Loop))
        inner_loops = [s for s in outer.body if isinstance(s, Loop)]
        assert len(inner_loops) == 2  # main + remainder
        assert inner_loops[1].step == 1

    def test_body_replicated(self):
        fn = lower(CHAIN_SRC)
        region = fn.regions()[0]
        report = apply_unrolling(region, fn.symtab, factor=3)
        main = report.unrolled[0]
        text = format_function(fn)
        # Three copies reference b at i, i+1, i+2, i+3 overall.
        assert "b[i + 3]" in text
        assert len(main.body) == 3 * 2  # 2 stmts x 3 copies

    def test_fresh_locals_per_copy(self):
        fn = lower(CHAIN_SRC)
        region = fn.regions()[0]
        report = apply_unrolling(region, fn.symtab, factor=2)
        main = report.unrolled[0]
        decls = [s.sym.name for s in main.body if hasattr(s, "sym")]
        assert len(decls) == len(set(decls))

    def test_parallel_loop_not_unrolled(self):
        fn = lower(CHAIN_SRC)
        region = fn.regions()[0]
        outer = next(s for s in region.body if isinstance(s, Loop))
        assert not can_unroll(outer)
        report = apply_unrolling(region, fn.symtab, factor=2)
        assert outer not in report.unrolled

    def test_downward_loop_rejected(self):
        fn = lower(
            """
            kernel k(double a[n], int n) {
              #pragma acc loop seq
              for (i = n - 1; i >= 0; i--) { a[i] = 1.0; }
            }
            """
        )
        loop = fn.body[0]
        assert not can_unroll(loop)
        with pytest.raises(UnrollError):
            unroll_loop(fn.body, loop, fn.symtab, 2)

    def test_factor_one_rejected(self):
        fn = lower(CHAIN_SRC)
        region = fn.regions()[0]
        outer = next(s for s in region.body if isinstance(s, Loop))
        inner = next(s for s in outer.body if isinstance(s, Loop))
        with pytest.raises(UnrollError):
            unroll_loop(outer.body, inner, fn.symtab, 1)


class TestSemantics:
    @pytest.mark.parametrize("factor", [2, 3, 4, 7])
    @pytest.mark.parametrize("n", [5, 8, 9, 16, 17])
    def test_equivalence_all_remainders(self, factor, n):
        rng = np.random.default_rng(factor * 100 + n)
        b = rng.uniform(size=n)
        a_ref = np.zeros(n)
        a_unr = np.zeros(n)

        fn1 = lower(CHAIN_SRC)
        run_kernel(fn1, {"a": a_ref, "b": b.copy(), "n": n})

        fn2 = lower(CHAIN_SRC)
        apply_unrolling(fn2.regions()[0], fn2.symtab, factor=factor)
        run_kernel(fn2, {"a": a_unr, "b": b.copy(), "n": n})
        np.testing.assert_array_equal(a_ref, a_unr)

    def test_equivalence_with_inner_conditionals(self):
        src = """
        kernel k(double a[n], const double b[n], int n) {
          #pragma acc loop seq
          for (i = 0; i < n; i++) {
            if (b[i] > 0.5) { a[i] = 1.0; } else { a[i] = b[i]; }
          }
        }
        """
        rng = np.random.default_rng(0)
        n = 11
        b = rng.uniform(size=n)
        a1, a2 = np.zeros(n), np.zeros(n)
        fn1 = lower(src)
        run_kernel(fn1, {"a": a1, "b": b.copy(), "n": n})
        fn2 = lower(src)
        apply_unrolling(fn2.regions()[0] if fn2.regions() else None, fn2.symtab) \
            if fn2.regions() else unroll_loop(fn2.body, fn2.body[0], fn2.symtab, 2)
        run_kernel(fn2, {"a": a2, "b": b.copy(), "n": n})
        np.testing.assert_array_equal(a1, a2)


class TestUnrollEnablesIntraReuse:
    def test_chain_becomes_intra_after_unroll(self):
        """Unrolling by 2 makes copy 0's b[i+1] and copy 1's b[(i+1)]
        overlap textually — SAFARA sees richer same-iteration reuse."""
        from repro.transforms import collect_candidates

        fn = lower(CHAIN_SRC)
        region = fn.regions()[0]
        before = collect_candidates(region)
        loads_saved_before = sum(c.group.loads_saved() for c in before)

        fn2 = lower(CHAIN_SRC)
        region2 = fn2.regions()[0]
        apply_unrolling(region2, fn2.symtab, factor=2)
        after = collect_candidates(region2)
        loads_saved_after = sum(c.group.loads_saved() for c in after)
        assert loads_saved_after > loads_saved_before
