"""The ``repro tune`` command: text output, the golden ``--json`` schema,
trace export, and error handling."""

import json

import pytest

from repro.cli import main
from repro.tune import RESULT_VERSION

DEMO = """
kernel demo(const double u[1:nz][1:ny][1:nx], double out[1:nz][1:ny][1:nx],
            int nx, int ny, int nz) {
  #pragma acc kernels loop gang vector(2) small(u, out) dim((1:nz,1:ny,1:nx)(u, out))
  for (j = 1; j < ny; j++) {
    #pragma acc loop gang vector(64)
    for (i = 1; i < nx; i++) {
      #pragma acc loop seq
      for (k = 1; k < nz; k++) {
        out[k][j][i] = u[k][j][i] + u[k-1][j][i];
      }
    }
  }
}
"""

ENV_ARGS = ["--env", "nx=32", "--env", "ny=16", "--env", "nz=8"]

#: The golden schema of ``repro tune --json``: exact key sets, per level.
GOLDEN_TOP = {
    "version", "strategy", "budget", "task_key", "space", "evaluated",
    "ledger", "reference", "best", "speedup_over_reference",
    "per_arch_best", "trials",
}
GOLDEN_SPACE = {"size", "unique", "pruned"}
GOLDEN_LEDGER = {"path", "hits", "misses"}
GOLDEN_TRIAL = {
    "point", "config", "model_ms", "max_registers", "min_occupancy", "source",
}
GOLDEN_POINT = {
    "register_limit", "safara", "safara_max_candidates",
    "honor_small", "honor_dim", "unroll_factor", "arch",
    "saturate", "esat_weights",
}


@pytest.fixture
def demo_file(tmp_path):
    path = tmp_path / "demo.acc"
    path.write_text(DEMO)
    return str(path)


class TestTextOutput:
    def test_reports_search_reference_best_speedup(self, demo_file, capsys):
        assert main(["tune", demo_file, *ENV_ARGS, "--budget", "4"]) == 0
        out = capsys.readouterr().out
        assert "tune: beam searched" in out
        assert "reference" in out
        assert "best" in out
        assert "speedup over reference:" in out

    def test_env_is_required(self, demo_file):
        with pytest.raises(SystemExit, match="--env"):
            main(["tune", demo_file])

    def test_unknown_config_rejected(self, demo_file):
        with pytest.raises(SystemExit, match="unknown config"):
            main(["tune", demo_file, *ENV_ARGS, "--config", "zzz"])

    def test_strategy_choices_enforced(self, demo_file, capsys):
        with pytest.raises(SystemExit):
            main(["tune", demo_file, *ENV_ARGS, "--strategy", "zzz"])


class TestJsonGoldenSchema:
    def test_exact_key_sets_at_every_level(self, demo_file, capsys):
        assert main(
            ["tune", demo_file, *ENV_ARGS, "--strategy", "exhaustive",
             "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert set(doc) == GOLDEN_TOP
        assert doc["version"] == RESULT_VERSION
        assert set(doc["space"]) == GOLDEN_SPACE
        assert set(doc["ledger"]) == GOLDEN_LEDGER
        assert doc["trials"], "at least the reference must be scored"
        for trial in [doc["reference"], doc["best"], *doc["trials"]]:
            assert set(trial) == GOLDEN_TRIAL
            assert set(trial["point"]) == GOLDEN_POINT
        assert doc["speedup_over_reference"] >= 1.0
        assert doc["evaluated"] == len(doc["trials"])
        assert doc["space"]["size"] >= doc["space"]["unique"]

    def test_json_is_sorted_and_deterministic(self, demo_file, capsys):
        main(["tune", demo_file, *ENV_ARGS, "--strategy", "exhaustive",
              "--json"])
        first = capsys.readouterr().out
        main(["tune", demo_file, *ENV_ARGS, "--strategy", "exhaustive",
              "--json"])
        second = capsys.readouterr().out
        a, b = json.loads(first), json.loads(second)
        for doc in (a, b):
            del doc["trials"]  # order may differ across thread pools
        assert a == b

    def test_ledger_path_round_trips(self, demo_file, tmp_path, capsys):
        ledger = str(tmp_path / "ledger.json")
        main(["tune", demo_file, *ENV_ARGS, "--budget", "2", "--ledger",
              ledger, "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["ledger"]["path"] == ledger
        assert doc["ledger"]["misses"] == 2
        main(["tune", demo_file, *ENV_ARGS, "--budget", "2", "--ledger",
              ledger, "--json"])
        warm = json.loads(capsys.readouterr().out)
        assert warm["ledger"]["hits"] == 2
        assert warm["evaluated"] == 0


class TestTraceExport:
    def test_chrome_trace_contains_tune_trial_spans(
        self, demo_file, tmp_path, capsys
    ):
        trace = tmp_path / "trace.json"
        assert main(
            ["tune", demo_file, *ENV_ARGS, "--strategy", "exhaustive",
             "--json", "--trace", str(trace)]
        ) == 0
        out = capsys.readouterr().out
        doc = json.loads(out[: out.rindex("}") + 1])
        events = json.loads(trace.read_text())["traceEvents"]
        trials = [e for e in events if e["ph"] == "X" and e["name"] == "tune.trial"]
        assert len(trials) == len(doc["trials"])
        assert any(e["name"] == "tune" for e in events if e["ph"] == "X")
