"""Cross-arch tuning: the ``arch`` knob axis and per-arch bests.

The acceptance property: ``repro tune --fleet`` on 355.seismic returns a
per-arch best table, and a warm re-tune through the shared ledger
replays every score with zero backend compilations.
"""

import pytest

from repro.compiler import CompilerSession
from repro.errors import ConfigError
from repro.tune import KnobSpace, tune

SRC = """
kernel chain(const double u[1:nz][1:ny][1:nx], double out[1:nz][1:ny][1:nx],
             int nx, int ny, int nz) {
  #pragma acc kernels loop gang vector(2) small(u, out) dim((1:nz,1:ny,1:nx)(u, out))
  for (j = 1; j < ny; j++) {
    #pragma acc loop gang vector(64)
    for (i = 1; i < nx; i++) {
      #pragma acc loop seq
      for (k = 1; k < nz; k++) {
        out[k][j][i] = u[k][j][i] + u[k-1][j][i];
      }
    }
  }
}
"""

ENV = {"nx": 32, "ny": 16, "nz": 8}
FLEET = ["kepler-k20xm", "cdna2-mi250"]

#: Small but live: one cap axis besides the arch axis.
SPACE = KnobSpace(
    register_limits=(None, 32),
    safara=(True,),
    candidate_budgets=(None,),
    unroll_factors=(1,),
)


def run_tune(**kw):
    kw.setdefault("env", ENV)
    kw.setdefault("strategy", "exhaustive")
    kw.setdefault("space", SPACE)
    kw.setdefault("session", CompilerSession())
    return tune(SRC, **kw)


class TestArchAxis:
    def test_fleet_widens_the_space_across_archs(self):
        result = run_tune(archs=FLEET)
        archs = {t.point.arch for t in result.trials}
        # The base arch (kepler) is spelled None; the other is explicit.
        assert archs == {None, "cdna2-mi250"}

    def test_per_arch_best_covers_the_fleet(self):
        result = run_tune(archs=FLEET)
        assert set(result.per_arch_best) == set(FLEET)
        for key, best in result.per_arch_best.items():
            others = [
                t.model_ms
                for t in result.trials
                if (t.point.arch or "kepler-k20xm") == key
            ]
            assert best.model_ms == min(others)

    def test_overall_best_is_the_min_across_archs(self):
        result = run_tune(archs=FLEET)
        assert result.best.model_ms == min(
            t.model_ms for t in result.per_arch_best.values()
        )

    def test_aliases_resolve_and_base_arch_collapses(self):
        # Both spellings of the base arch merge into the None axis value:
        # the fleet degenerates to a single-arch search.
        fleet = run_tune(archs=["kepler", "kepler-k20xm"])
        single = run_tune()
        assert len(fleet.trials) == len(single.trials)
        assert set(fleet.per_arch_best) == {"kepler-k20xm"}

    def test_single_arch_run_reports_one_best(self):
        result = run_tune()
        assert set(result.per_arch_best) == {"kepler-k20xm"}
        assert result.per_arch_best["kepler-k20xm"].model_ms == result.best.model_ms

    def test_unknown_fleet_name_raises(self):
        with pytest.raises(ConfigError, match="unknown GPU arch 'h100'"):
            run_tune(archs=["kepler", "h100"])

    def test_best_config_carries_the_winning_arch(self):
        result = run_tune(archs=FLEET)
        from repro.gpu.arch import arch_key

        winner = min(
            result.per_arch_best.items(), key=lambda kv: kv[1].model_ms
        )[0]
        assert arch_key(result.best_config.arch) == winner


class TestRegisterCapCollapsePerArch:
    def test_cap_deadness_is_arch_dependent(self):
        # A 255 cap equals "no cap" on Kepler (255 hardware max) but is a
        # live constraint on CDNA2 (256 architected VGPRs) — the
        # canonical space must keep the CDNA2 point and merge Kepler's.
        space = KnobSpace(
            register_limits=(None, 255),
            safara=(True,),
            candidate_budgets=(None,),
            unroll_factors=(1,),
        )
        result = run_tune(space=space, archs=FLEET)
        kepler_caps = {
            t.point.register_limit
            for t in result.trials
            if t.point.arch is None
        }
        cdna2_caps = {
            t.point.register_limit
            for t in result.trials
            if t.point.arch == "cdna2-mi250"
        }
        assert kepler_caps == {None}
        assert cdna2_caps == {None, 255}


class TestSeismicFleetWarmRetune:
    """The acceptance run: 355.seismic, two archs, resumable ledger."""

    @pytest.fixture(scope="class")
    def seismic(self):
        from repro.bench import SPEC, load_all

        load_all()
        return SPEC.get("355.seismic")

    def test_cold_then_warm_retune_zero_backend_compilations(
        self, seismic, tmp_path
    ):
        ledger = tmp_path / "ledger.json"
        kw = dict(
            env=dict(seismic.env),
            launches=seismic.launches,
            strategy="beam",
            budget=8,
            archs=FLEET,
            ledger=ledger,
        )
        cold = tune(seismic.source, session=CompilerSession(), **kw)
        assert set(cold.per_arch_best) == set(FLEET)
        assert cold.evaluated == len(cold.trials) > 0

        warm_session = CompilerSession()
        warm = tune(seismic.source, session=warm_session, **kw)
        assert warm.evaluated == 0
        assert warm.ledger_hits == len(cold.trials)
        metric = warm_session.metrics.get(
            "pipeline.pass.safara.backend_compilations"
        )
        assert metric is None or int(metric.value) == 0
        assert warm.best.model_ms == cold.best.model_ms
        assert {k: t.model_ms for k, t in warm.per_arch_best.items()} == {
            k: t.model_ms for k, t in cold.per_arch_best.items()
        }
