"""The resumable tuning ledger: keys, persistence, crash recovery."""

import json
import threading

from repro.compiler import BASE, SMALL_DIM_SAFARA
from repro.tune import TuneLedger, task_key

SCORE = {
    "config": "tune(rl=none;safara=1;cand=none;small=1;dim=1;unroll=1)",
    "model_ms": 1.25,
    "max_registers": 24,
    "min_occupancy": 1.0,
}


class TestTaskKey:
    def test_stable_for_identical_inputs(self):
        a = task_key("src", BASE, env={"nx": 8}, launches=1)
        b = task_key("src", BASE, env={"nx": 8}, launches=1)
        assert a == b

    def test_sensitive_to_every_component(self):
        ref = task_key("src", BASE, env={"nx": 8}, launches=1)
        assert task_key("src2", BASE, env={"nx": 8}, launches=1) != ref
        assert task_key("src", SMALL_DIM_SAFARA, env={"nx": 8}, launches=1) != ref
        assert task_key("src", BASE, env={"nx": 9}, launches=1) != ref
        assert task_key("src", BASE, env={"nx": 8}, launches=2) != ref

    def test_env_order_does_not_matter(self):
        a = task_key("src", BASE, env={"nx": 8, "ny": 4})
        b = task_key("src", BASE, env={"ny": 4, "nx": 8})
        assert a == b


class TestRoundTrip:
    def test_record_get_flush_reload(self, tmp_path):
        path = tmp_path / "ledger.json"
        led = TuneLedger(path)
        assert led.get("t", "p") is None
        led.record("t", "p", SCORE)
        assert led.get("t", "p") == SCORE
        led.flush()
        # A fresh instance (a new process, in effect) sees the score.
        again = TuneLedger(path)
        assert again.get("t", "p") == SCORE
        assert len(again) == 1

    def test_flush_without_changes_writes_nothing(self, tmp_path):
        path = tmp_path / "ledger.json"
        TuneLedger(path).flush()
        assert not path.exists()

    def test_returned_entries_are_copies(self, tmp_path):
        led = TuneLedger(tmp_path / "l.json")
        led.record("t", "p", SCORE)
        led.get("t", "p")["model_ms"] = -1
        assert led.get("t", "p") == SCORE


class TestCrashRecovery:
    def test_resume_after_kill_round_trip(self, tmp_path):
        """A killed tune loses only unflushed points: whatever reached
        disk replays verbatim in the next run."""
        path = tmp_path / "ledger.json"
        first = TuneLedger(path)
        first.record("task", "p1", SCORE)
        first.flush()
        first.record("task", "p2", SCORE)  # staged, never flushed: "killed"
        del first

        resumed = TuneLedger(path)
        assert resumed.get("task", "p1") == SCORE
        assert resumed.get("task", "p2") is None
        resumed.record("task", "p2", SCORE)
        resumed.flush()
        assert len(TuneLedger(path)) == 2

    def test_corrupt_file_reads_as_empty(self, tmp_path):
        path = tmp_path / "ledger.json"
        path.write_text("{not json")
        led = TuneLedger(path)
        assert len(led) == 0
        led.record("t", "p", SCORE)
        led.flush()
        assert TuneLedger(path).get("t", "p") == SCORE

    def test_alien_version_reads_as_empty(self, tmp_path):
        path = tmp_path / "ledger.json"
        path.write_text(json.dumps({"version": 99, "tasks": {"t": {}}}))
        assert len(TuneLedger(path)) == 0

    def test_flush_merges_concurrent_writers(self, tmp_path):
        path = tmp_path / "ledger.json"
        a, b = TuneLedger(path), TuneLedger(path)
        a.record("task", "pa", SCORE)
        b.record("task", "pb", SCORE)
        a.flush()
        b.flush()  # must not clobber a's point
        merged = TuneLedger(path)
        assert merged.get("task", "pa") == SCORE
        assert merged.get("task", "pb") == SCORE

    def test_concurrent_records_are_thread_safe(self, tmp_path):
        led = TuneLedger(tmp_path / "l.json")

        def work(tag):
            for i in range(50):
                led.record("task", f"{tag}-{i}", SCORE)

        threads = [threading.Thread(target=work, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        led.flush()
        assert len(TuneLedger(led.path)) == 200


class TestIntrospection:
    def test_points_and_as_dict(self, tmp_path):
        led = TuneLedger(tmp_path / "l.json")
        led.record("t1", "p1", SCORE)
        led.record("t1", "p2", SCORE)
        led.record("t2", "p1", SCORE)
        assert set(led.points("t1")) == {"p1", "p2"}
        d = led.as_dict()
        assert d["tasks"] == 2 and d["points"] == 3
