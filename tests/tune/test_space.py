"""The knob space: points, clause inference, canonicalization, pruning.

The pruning-soundness property test at the bottom is the load-bearing
one: every collapse rule in :func:`repro.tune.space.canonicalize` claims
two configurations compile to bit-identical programs; here we *score*
both on the paper's table kernels and demand equal modeled times, so
pruning can never discard the true best configuration.
"""

import pytest

from repro.compiler import BASE, CompilerSession
from repro.tune import (
    AXES,
    KnobSpace,
    TrialPoint,
    Tuner,
    canonicalize,
    default_space,
    prune_points,
    safara_candidate_ceiling,
    source_uses_clauses,
)

CLAUSED = """
kernel k(const double u[1:nz][1:ny][1:nx], double out[1:nz][1:ny][1:nx],
         int nx, int ny, int nz) {
  #pragma acc kernels loop gang vector(2) small(u, out) dim((1:nz,1:ny,1:nx)(u, out))
  for (j = 1; j < ny; j++) {
    #pragma acc loop gang vector(64)
    for (i = 1; i < nx; i++) {
      #pragma acc loop seq
      for (k = 1; k < nz; k++) {
        out[k][j][i] = u[k][j][i] + u[k-1][j][i];
      }
    }
  }
}
"""

PLAIN = CLAUSED.replace(
    " small(u, out) dim((1:nz,1:ny,1:nx)(u, out))", ""
)


class TestTrialPoint:
    def test_key_is_stable_and_total(self):
        p = TrialPoint()
        assert p.key() == "rl=none;safara=1;cand=none;small=1;dim=1;unroll=1"
        q = TrialPoint(register_limit=48, safara_max_candidates=2,
                       honor_small=False, unroll_factor=2)
        assert q.key() == "rl=48;safara=1;cand=2;small=0;dim=1;unroll=2"
        assert p.key() != q.key()

    def test_apply_goes_through_derive(self):
        cfg = TrialPoint(register_limit=48, safara=False).apply(BASE)
        assert cfg.register_limit == 48
        assert cfg.safara is False
        assert cfg.name.startswith("tune(")

    def test_as_dict_round_trips_every_axis(self):
        p = TrialPoint(register_limit=32, safara_max_candidates=4)
        d = p.as_dict()
        assert set(d) == set(AXES)
        assert TrialPoint(**d) == p


class TestClauseInference:
    def test_clauses_detected_on_directive_lines(self):
        assert source_uses_clauses(CLAUSED) == (True, True)
        assert source_uses_clauses(PLAIN) == (False, False)

    def test_subscripts_and_comments_cannot_fake_a_clause(self):
        tricky = PLAIN + "\n// small(u) dim((1:n)(u)) in a comment\n"
        assert source_uses_clauses(tricky) == (False, False)

    def test_default_space_collapses_dead_clause_axes(self):
        space = default_space(PLAIN)
        assert space.honor_small == (False,)
        assert space.honor_dim == (False,)
        full = default_space(CLAUSED)
        assert full.honor_small == (True, False)
        assert full.honor_dim == (True, False)
        assert full.size == 4 * space.size


class TestSpaceEnumeration:
    def test_points_match_size_and_are_unique(self):
        space = KnobSpace()
        points = space.points()
        assert len(points) == space.size
        assert len({p.key() for p in points}) == len(points)

    def test_reference_point_is_the_paper_default(self):
        ref = KnobSpace().reference_point()
        assert ref == TrialPoint()

    def test_reference_respects_collapsed_clause_axes(self):
        ref = default_space(PLAIN).reference_point()
        assert ref.honor_small is False and ref.honor_dim is False


class TestCanonicalize:
    def test_dead_clause_axes_collapse(self):
        p = TrialPoint(honor_small=True, honor_dim=True)
        c = canonicalize(p, uses_small=False, uses_dim=False)
        assert c.honor_small is False and c.honor_dim is False

    def test_budget_dead_without_safara(self):
        p = TrialPoint(safara=False, safara_max_candidates=2)
        c = canonicalize(p, uses_small=True, uses_dim=True)
        assert c.safara_max_candidates is None

    def test_budget_at_ceiling_is_unlimited(self):
        p = TrialPoint(safara_max_candidates=8)
        c = canonicalize(p, uses_small=True, uses_dim=True, candidate_ceiling=8)
        assert c.safara_max_candidates is None
        under = TrialPoint(safara_max_candidates=2)
        assert canonicalize(
            under, uses_small=True, uses_dim=True, candidate_ceiling=8
        ).safara_max_candidates == 2

    def test_budget_collapse_requires_unroll_one(self):
        p = TrialPoint(safara_max_candidates=8, unroll_factor=2)
        c = canonicalize(p, uses_small=True, uses_dim=True, candidate_ceiling=8)
        assert c.safara_max_candidates == 8

    def test_register_cap_at_arch_max_is_uncapped(self):
        p = TrialPoint(register_limit=255)
        c = canonicalize(p, uses_small=True, uses_dim=True, max_register_limit=255)
        assert c.register_limit is None
        kept = TrialPoint(register_limit=64)
        assert canonicalize(
            kept, uses_small=True, uses_dim=True, max_register_limit=255
        ).register_limit == 64

    def test_canonicalize_is_idempotent(self):
        for p in KnobSpace().points():
            c = canonicalize(p, uses_small=False, uses_dim=True,
                             max_register_limit=255, candidate_ceiling=3)
            assert canonicalize(c, uses_small=False, uses_dim=True,
                                max_register_limit=255, candidate_ceiling=3) == c


class TestPrunePoints:
    def test_prune_counts_and_mapping(self):
        points = KnobSpace().points()
        unique, mapping, pruned = prune_points(
            points, uses_small=False, uses_dim=False
        )
        assert pruned == len(points) - len(unique)
        assert set(mapping) == {p.key() for p in points}
        canon_keys = {p.key() for p in unique}
        for rep in mapping.values():
            assert rep.key() in canon_keys

    def test_ceiling_from_the_cost_model(self):
        ceiling = safara_candidate_ceiling(CLAUSED, BASE)
        assert ceiling is not None and ceiling >= 1
        big = TrialPoint(safara_max_candidates=ceiling + 5)
        c = canonicalize(big, uses_small=True, uses_dim=True,
                         candidate_ceiling=ceiling)
        assert c.safara_max_candidates is None


def _score_all(source, spec_env, points, base=BASE):
    """Model-time of each point's config, via one shared session."""
    session = CompilerSession()
    tuner = Tuner(source, env=spec_env, launches=1, base=base, session=session)
    tuner._build_space(None)
    tuner.evaluate(points)
    return {p.key(): tuner.scored[p.key()].model_ms for p in points}


@pytest.mark.parametrize("bench", ["355.seismic", "356.sp"])
class TestPruningSoundness:
    """Property: pruning never discards the true best configuration.

    For the paper's table kernels we score every point of a reduced (but
    rule-covering) knob grid *and* its canonical representative: members
    of one equivalence class must score identically, hence the best over
    the pruned space equals the best over the full space.
    """

    def _space(self, source, base):
        ceiling = safara_candidate_ceiling(source, base)
        uses_small, uses_dim = source_uses_clauses(source)
        arch_max = base.arch.max_registers_per_thread
        return KnobSpace(
            # arch_max exercises the cap collapse; 48 is a live cap.
            register_limits=(None, arch_max, 48),
            safara=(True, False),
            # ceiling + 1 exercises the budget collapse; 1 truncates.
            candidate_budgets=(None, (ceiling or 0) + 1, 1),
            honor_small=(True, False) if uses_small else (False,),
            honor_dim=(True, False) if uses_dim else (False,),
            unroll_factors=(1,),
        )

    def test_pruned_points_score_identically(self, bench):
        from repro.bench import load_all

        SPEC, _ = load_all()
        spec = SPEC.get(bench)
        base = BASE
        space = self._space(spec.source, base)
        points = space.points()
        uses_small, uses_dim = source_uses_clauses(spec.source)
        unique, mapping, pruned = prune_points(
            points,
            uses_small=uses_small,
            uses_dim=uses_dim,
            max_register_limit=base.arch.max_registers_per_thread,
            candidate_ceiling=safara_candidate_ceiling(spec.source, base),
        )
        assert pruned > 0, "the reduced grid must exercise at least one rule"
        scores = _score_all(spec.source, spec.test_env, points + unique, base)
        for point in points:
            rep = mapping[point.key()]
            assert scores[point.key()] == scores[rep.key()], (
                f"{point.key()} scored differently from its representative "
                f"{rep.key()} — pruning would be unsound"
            )
        best_full = min(scores[p.key()] for p in points)
        best_pruned = min(scores[p.key()] for p in unique)
        assert best_pruned == best_full
