"""Search strategies, driven by a synthetic (no-compile) SearchContext."""

import pytest

from repro.errors import TuneError
from repro.tune import (
    STRATEGIES,
    BeamStrategy,
    ExhaustiveStrategy,
    GreedyStrategy,
    KnobSpace,
    SearchContext,
    TrialPoint,
    canonicalize,
    make_strategy,
    prune_points,
)


class FakeTrial:
    def __init__(self, point, model_ms):
        self.point = point
        self.model_ms = model_ms


class Harness:
    """A deterministic scoring world: model time is a pure function of
    the point, and every evaluate() goes through tuner-like dedup +
    budget accounting."""

    def __init__(self, space=None, budget=None, score=None):
        self.space = space or KnobSpace(
            register_limits=(None, 32, 48),
            candidate_budgets=(None, 2),
            honor_small=(False,),
            honor_dim=(False,),
            unroll_factors=(1,),
        )
        self.points, self.mapping, _ = prune_points(
            self.space.points(), uses_small=False, uses_dim=False
        )
        self.reference = self.canonical(self.space.reference_point())
        self.budget = budget
        self.scored = {}
        self.trials = []
        self.batches = []
        self._started = 0
        self._score = score or self.default_score

    @staticmethod
    def default_score(p):
        ms = 10.0
        if p.register_limit == 48:
            ms -= 2.0
        if p.register_limit == 32:
            ms -= 1.0
        if p.safara:
            ms -= 3.0
        if p.safara_max_candidates is not None:
            ms += 0.5
        return ms

    def canonical(self, p):
        return canonicalize(p, uses_small=False, uses_dim=False)

    def remaining(self):
        return float("inf") if self.budget is None else self.budget - self._started

    def evaluate(self, points):
        batch = []
        for p in points:
            if p.key() in self.scored:
                continue
            if self.remaining() <= 0:
                break
            self._started += 1
            t = FakeTrial(p, self._score(p))
            self.scored[p.key()] = t
            self.trials.append(t)
            batch.append(t)
        self.batches.append(len(batch))
        return batch

    def prior(self, p):
        return self._score(p)  # an oracle prior

    def best(self):
        ref = self.reference.key()
        return min(
            self.trials,
            key=lambda t: (t.model_ms, t.point.key() != ref, t.point.key()),
        )

    def context(self):
        return SearchContext(
            space=self.space,
            points=self.points,
            reference=self.reference,
            evaluate=self.evaluate,
            canonical=self.canonical,
            prior=self.prior,
            remaining=self.remaining,
            best=self.best,
            scored=self.scored,
        )

    def run(self, strategy):
        self.evaluate([self.reference])  # the tuner always scores it first
        strategy.run(self.context())
        return self.best()


class TestRegistry:
    def test_known_names(self):
        assert set(STRATEGIES) == {"exhaustive", "greedy", "beam"}
        for name in STRATEGIES:
            assert make_strategy(name).name == name

    def test_instance_passthrough(self):
        s = BeamStrategy(width=3)
        assert make_strategy(s) is s

    def test_unknown_name_raises_tune_error(self):
        with pytest.raises(TuneError, match="unknown strategy"):
            make_strategy("zzz")


class TestExhaustive:
    def test_scores_every_canonical_point(self):
        h = Harness()
        h.run(ExhaustiveStrategy(batch_size=4))
        assert set(h.scored) == {p.key() for p in h.points}

    def test_finds_the_true_best(self):
        h = Harness()
        best = h.run(ExhaustiveStrategy())
        truth = min(h.default_score(p) for p in h.points)
        assert best.model_ms == truth

    def test_budget_caps_trials(self):
        h = Harness(budget=3)
        h.run(ExhaustiveStrategy(batch_size=2))
        assert len(h.trials) == 3


class TestGreedy:
    def test_descends_to_the_true_best_on_separable_scores(self):
        h = Harness()
        best = h.run(GreedyStrategy())
        truth = min(h.default_score(p) for p in h.points)
        assert best.model_ms == truth

    def test_costs_less_than_the_grid(self):
        h = Harness()
        h.run(GreedyStrategy())
        assert len(h.trials) < len(h.points)

    def test_respects_budget(self):
        h = Harness(budget=2)
        h.run(GreedyStrategy())
        assert len(h.trials) == 2


class TestBeam:
    def test_oracle_prior_finds_best_in_first_batch(self):
        h = Harness()
        best = h.run(BeamStrategy(width=2, patience=1))
        truth = min(h.default_score(p) for p in h.points)
        assert best.model_ms == truth

    def test_patience_stops_the_tail(self):
        # An inverted prior makes every batch after the first stale.
        h = Harness()
        h.prior = lambda p: -h.default_score(p)
        h.run(BeamStrategy(width=1, patience=2))
        assert len(h.trials) < len(h.points)

    def test_zero_stale_resets_on_improvement(self):
        h = Harness()
        h.run(BeamStrategy(width=1, patience=1))
        # The oracle prior orders strictly by score: first non-reference
        # batch improves, the one after cannot, so the run stops early.
        assert len(h.trials) <= len(h.points)
