"""End-to-end tuner behavior: search, ledger warm starts, observability."""

import pytest

import repro
from repro.compiler import BASE, CompilerSession
from repro.errors import TuneError
from repro.obs.tracer import Tracer
from repro.tune import KnobSpace, Tuner, tune

SRC = """
kernel chain(const double u[1:nz][1:ny][1:nx], double out[1:nz][1:ny][1:nx],
             int nx, int ny, int nz) {
  #pragma acc kernels loop gang vector(2) small(u, out) dim((1:nz,1:ny,1:nx)(u, out))
  for (j = 1; j < ny; j++) {
    #pragma acc loop gang vector(64)
    for (i = 1; i < nx; i++) {
      #pragma acc loop seq
      for (k = 1; k < nz; k++) {
        out[k][j][i] = u[k][j][i] + u[k-1][j][i] + u[k-2][j][i];
      }
    }
  }
}
"""

ENV = {"nx": 32, "ny": 16, "nz": 8}

#: A small but live space: 2 caps x safara on/off x 2 clause axes.
SPACE = KnobSpace(
    register_limits=(None, 32),
    candidate_budgets=(None,),
    unroll_factors=(1,),
)


def run_tune(**kw):
    kw.setdefault("env", ENV)
    kw.setdefault("strategy", "exhaustive")
    kw.setdefault("space", SPACE)
    kw.setdefault("session", CompilerSession())
    return tune(SRC, **kw)


class TestSearch:
    def test_best_never_worse_than_reference(self):
        result = run_tune()
        assert result.best.model_ms <= result.reference.model_ms
        assert result.speedup_over_reference >= 1.0

    def test_exhaustive_scores_every_unique_point(self):
        result = run_tune()
        assert len(result.trials) == result.unique_points
        assert len({t.point.key() for t in result.trials}) == len(result.trials)
        assert result.pruned == result.space_size - result.unique_points

    def test_reference_scored_first(self):
        result = run_tune()
        assert result.trials[0].point.key() == result.reference.point.key()

    def test_budget_one_returns_the_reference(self):
        result = run_tune(budget=1)
        assert len(result.trials) == 1
        assert result.best.point.key() == result.reference.point.key()

    def test_best_config_is_derived_from_base(self):
        result = run_tune()
        assert result.best_config.arch is BASE.arch
        assert result.best_config.register_limit == result.best.point.register_limit

    def test_strategies_agree_on_this_tiny_space(self):
        exhaustive = run_tune()
        beam = run_tune(strategy="beam")
        assert beam.best.model_ms == exhaustive.best.model_ms


class TestValidation:
    def test_env_is_required(self):
        with pytest.raises(TuneError, match="env"):
            Tuner(SRC, env=None)

    def test_budget_must_admit_the_reference(self):
        with pytest.raises(TuneError, match="budget"):
            Tuner(SRC, env=ENV, budget=0)

    def test_unknown_strategy_is_a_tune_error(self):
        with pytest.raises(TuneError, match="unknown strategy"):
            run_tune(strategy="zzz")


class TestLedgerWarmStart:
    def test_warm_retune_does_zero_backend_compilations(self, tmp_path):
        ledger = tmp_path / "ledger.json"
        cold = run_tune(ledger=ledger)
        assert cold.evaluated == cold.unique_points
        assert cold.ledger_hits == 0

        # A fresh session: nothing in any compile cache, only the ledger.
        session = CompilerSession()
        warm = run_tune(ledger=ledger, session=session)
        assert warm.evaluated == 0
        assert warm.ledger_hits == warm.unique_points
        assert session.stats.compilations == 0
        safara = session.metrics.get("pipeline.pass.safara.backend_compilations")
        assert safara is None or safara.value == 0
        assert warm.best.model_ms == cold.best.model_ms
        assert warm.best.point == cold.best.point

    def test_partial_run_resumes_where_it_stopped(self, tmp_path):
        ledger = tmp_path / "ledger.json"
        partial = run_tune(ledger=ledger, budget=2)
        assert partial.evaluated == 2
        resumed = run_tune(ledger=ledger)
        assert resumed.ledger_hits == 2
        assert resumed.evaluated == resumed.unique_points - 2

    def test_task_isolation(self, tmp_path):
        """A different env is a different task: no cross-replay."""
        ledger = tmp_path / "ledger.json"
        run_tune(ledger=ledger)
        other = run_tune(ledger=ledger, env={"nx": 64, "ny": 16, "nz": 8})
        assert other.ledger_hits == 0


class TestObservability:
    def test_every_trial_is_a_span(self):
        tracer = Tracer(enabled=True)
        with tracer.activate():
            result = run_tune()
        names = [s.name for s in tracer.spans]
        assert names.count("tune") == 1
        assert names.count("tune.trial") == len(result.trials)

    def test_ledger_replays_are_cached_spans(self, tmp_path):
        ledger = tmp_path / "ledger.json"
        run_tune(ledger=ledger)
        tracer = Tracer(enabled=True)
        with tracer.activate():
            warm = run_tune(ledger=ledger)
        trials = [s for s in tracer.spans if s.name == "tune.trial"]
        assert len(trials) == warm.unique_points
        assert all(s.args.get("cached") for s in trials)

    def test_metrics_account_for_the_run(self, tmp_path):
        session = CompilerSession()
        ledger = tmp_path / "ledger.json"
        result = run_tune(session=session, ledger=ledger)
        m = session.metrics
        assert m.get("tune.trials").value == len(result.trials)
        assert m.get("tune.ledger.misses").value == result.evaluated
        assert m.get("tune.pruned").value == result.pruned
        assert m.get("tune.best_model_ms").value == result.best.model_ms
        assert m.get("tune.batches").value >= 1


class TestFacade:
    def test_repro_tune_is_the_function(self):
        assert repro.tune is tune

    def test_tune_submodule_stays_importable(self):
        from repro.tune import tune as inner

        assert inner is tune
